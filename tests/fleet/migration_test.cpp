#include "fleet/migration.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "trace/synthetic.hpp"

namespace ssdk::fleet {
namespace {

telemetry::RollupSummary summary(double heat_us, double bus = 0.0) {
  telemetry::RollupSummary s;
  s.read_p99_us = heat_us / 2;
  s.write_p99_us = heat_us / 2;
  s.mean_bus_util = bus;
  return s;
}

TEST(HotDetection, FlagsDevicesAboveMedianHeat) {
  MigrationConfig config;  // hot_heat_ratio = 1.3
  const std::vector<telemetry::RollupSummary> summaries = {
      summary(100.0), summary(100.0), summary(100.0), summary(500.0)};
  const auto hot = detect_hot_devices(summaries, config);
  EXPECT_EQ(hot, (std::vector<bool>{false, false, false, true}));
}

TEST(HotDetection, BusSaturationIsHotEvenWhenHeatIsUniform) {
  MigrationConfig config;
  const std::vector<telemetry::RollupSummary> summaries = {
      summary(100.0, 0.95), summary(100.0, 0.2)};
  const auto hot = detect_hot_devices(summaries, config);
  EXPECT_TRUE(hot[0]);
  EXPECT_FALSE(hot[1]);
}

TEST(HotDetection, IdleFleetHasNoHotDevices) {
  MigrationConfig config;
  const std::vector<telemetry::RollupSummary> summaries = {
      summary(0.0), summary(0.0), summary(0.0)};
  const auto hot = detect_hot_devices(summaries, config);
  for (const bool h : hot) EXPECT_FALSE(h);
  EXPECT_TRUE(detect_hot_devices({}, config).empty());
}

std::vector<sim::IoRequest> trial_stream(std::uint64_t count,
                                         double write_fraction,
                                         SimTime start) {
  trace::SyntheticSpec spec;
  spec.request_count = count;
  spec.write_fraction = write_fraction;
  spec.intensity_rps = 20'000.0;
  spec.address_space_pages = 4096;
  spec.seed = 11;
  const auto records = trace::generate_synthetic(spec);
  std::vector<sim::IoRequest> reqs;
  for (std::size_t i = 0; i < records.size(); ++i) {
    sim::IoRequest r;
    r.id = i;
    r.tenant = 0;
    r.type = records[i].type;
    r.lpn = records[i].lpn;
    r.page_count = records[i].pages;
    r.arrival = start + records[i].arrival;
    reqs.push_back(r);
  }
  return reqs;
}

TEST(ScorePlacement, MeasuresSuffixWithoutMutatingParent) {
  ssd::Ssd device{ssd::SsdOptions{}};
  const auto warm = trial_stream(500, 0.5, 0);
  device.submit(warm);
  device.run_to_completion();
  const auto before = device.metrics().aggregate();
  const SimTime now_before = device.now();

  const auto trial =
      trial_stream(400, 0.5, device.now() + kMillisecond);
  const double score = score_placement(device, trial);
  EXPECT_GT(score, 0.0);
  EXPECT_TRUE(std::isfinite(score));

  // The trial ran on a fork; the parent saw nothing.
  const auto after = device.metrics().aggregate();
  EXPECT_EQ(after.read_latency_us.count(), before.read_latency_us.count());
  EXPECT_EQ(after.write_latency_us.count(),
            before.write_latency_us.count());
  EXPECT_EQ(device.now(), now_before);
}

TEST(ScorePlacement, EmptyTrialScoresZero) {
  ssd::Ssd device{ssd::SsdOptions{}};
  EXPECT_DOUBLE_EQ(score_placement(device, {}), 0.0);
}

TEST(ScorePlacement, BusierDestinationScoresWorse) {
  // Same trial on an idle device vs one with a deep queued backlog at the
  // same instant: contention must be visible in the score.
  ssd::Ssd idle{ssd::SsdOptions{}};
  ssd::Ssd busy{ssd::SsdOptions{}};
  auto backlog = trial_stream(3000, 0.9, 0);
  // Compress arrivals so the backlog is still draining when the trial
  // lands on the fork.
  for (auto& r : backlog) r.arrival /= 16;
  busy.submit(backlog);
  busy.run_to_completion();

  const SimTime at = busy.now() + kMillisecond;
  auto trial = trial_stream(600, 0.5, at);
  const double idle_score = score_placement(idle, trial);
  // Heavier concurrent native traffic on the busy candidate.
  auto native = trial_stream(2000, 0.9, at);
  for (auto& r : native) r.tenant = 1;
  auto combined = trial;
  combined.insert(combined.end(), native.begin(), native.end());
  std::stable_sort(combined.begin(), combined.end(),
                   [](const sim::IoRequest& a, const sim::IoRequest& b) {
                     return a.arrival < b.arrival;
                   });
  const double busy_score = score_placement(busy, combined);
  EXPECT_GT(busy_score, idle_score);
}

}  // namespace
}  // namespace ssdk::fleet
