#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "fleet/report.hpp"
#include "util/csv.hpp"

namespace ssdk::fleet {
namespace {

FleetConfig small_config() {
  FleetConfig config;
  config.devices = 3;
  config.slots_per_device = 2;
  config.epochs = 2;
  config.epoch_ns = 15 * kMillisecond;
  config.seed = 42;
  config.isolated_baseline = false;
  return config;
}

TEST(EpochRecords, PureFunctionOfSeedTenantEpoch) {
  TenantSpec spec;
  spec.id = 3;
  spec.traffic.request_count = 400;
  spec.traffic.intensity_rps = 20'000.0;
  const Duration epoch = 10 * kMillisecond;

  const auto a = epoch_records(spec, 7, 2, epoch);
  const auto b = epoch_records(spec, 7, 2, epoch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].lpn, b[i].lpn);
  }
  // Confined to the epoch's absolute window.
  for (const auto& r : a) {
    EXPECT_GE(r.arrival, 2 * epoch);
    EXPECT_LT(r.arrival, 3 * epoch);
  }
  // Different epochs and seeds give different streams.
  const auto c = epoch_records(spec, 7, 3, epoch);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a.front().lpn, c.front().lpn);
}

TEST(MakeTenantSpecs, StridePlacesHeavyWriters) {
  const auto specs = make_tenant_specs(8, 4, 20 * kMillisecond);
  ASSERT_EQ(specs.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(specs[i].id, i);
    if (i % 4 == 0) {
      EXPECT_GT(specs[i].traffic.write_fraction, 0.5) << i;
    }
  }
}

TEST(Fleet, RunsAndAccountsEveryTenant) {
  const FleetConfig config = small_config();
  const auto specs = make_tenant_specs(5, 0, config.epoch_ns);
  RoundRobinPlacement policy;
  const FleetResult result = run_fleet(config, specs, policy, 2);

  EXPECT_EQ(result.policy, "round_robin");
  EXPECT_EQ(result.devices, 3u);
  ASSERT_EQ(result.device_results.size(), 3u);
  ASSERT_EQ(result.tenant_results.size(), 5u);
  EXPECT_GT(result.total_requests, 0u);
  EXPECT_GT(result.aggregate_total_us, 0.0);
  for (const auto& d : result.device_results) {
    EXPECT_EQ(d.epoch_summaries.size(), config.epochs);
  }
  std::uint64_t tenant_requests = 0;
  for (const auto& t : result.tenant_results) {
    EXPECT_GT(t.reads + t.writes, 0u) << "tenant " << t.tenant;
    EXPECT_GT(t.total_us, 0.0);
    tenant_requests += t.reads + t.writes;
  }
  // Every completed host request is attributed to exactly one tenant
  // (bulk migration copies are charged to their tenant's slot as well).
  EXPECT_GE(tenant_requests, result.total_requests);
}

TEST(Fleet, IsolatedBaselineYieldsSlowdown) {
  FleetConfig config = small_config();
  config.isolated_baseline = true;
  const auto specs = make_tenant_specs(4, 2, config.epoch_ns);
  LeastLoadedPlacement policy;
  const FleetResult result = run_fleet(config, specs, policy, 2);
  EXPECT_GT(result.mean_slowdown, 0.0);
  for (const auto& t : result.tenant_results) {
    EXPECT_GT(t.isolated_total_us, 0.0);
    EXPECT_GT(t.slowdown, 0.0);
  }
}

TEST(Fleet, MigrationMovesTenantOffHotDevice) {
  // Two heavy writers collocated on device 0 by round-robin (stride 3 on
  // 3 devices), light readers elsewhere, and a free slot left on device 2:
  // device 0 must rank hot, and at least one boundary should commit a
  // fork-verified move.
  FleetConfig config = small_config();
  config.epochs = 3;
  config.migration.max_per_epoch = 1;
  const auto specs = make_tenant_specs(5, 3, config.epoch_ns);
  RoundRobinPlacement policy;
  const FleetResult result = run_fleet(config, specs, policy, 2);

  ASSERT_FALSE(result.migrations.empty());
  const auto& m = result.migrations.front();
  EXPECT_NE(m.from_device, m.to_device);
  EXPECT_LT(m.move_score_us, m.stay_score_us);
  EXPECT_FALSE(m.trials.empty());
  EXPECT_GT(m.footprint_pages, 0u);
  EXPECT_GE(m.footprint_pages, m.injected_pages);
  EXPECT_GT(m.modeled_cost_ns, 0);

  const auto& moved = result.tenant_results[m.tenant];
  EXPECT_EQ(moved.initial_device, m.from_device);
  EXPECT_GE(moved.migrations, 1u);
}

TEST(Fleet, MigrationCanBeDisabled) {
  FleetConfig config = small_config();
  config.epochs = 3;
  config.migration.enabled = false;
  const auto specs = make_tenant_specs(6, 3, config.epoch_ns);
  RoundRobinPlacement policy;
  const FleetResult result = run_fleet(config, specs, policy, 2);
  EXPECT_TRUE(result.migrations.empty());
  for (const auto& t : result.tenant_results) {
    EXPECT_EQ(t.initial_device, t.final_device);
  }
}

TEST(Fleet, RejectsInvalidConfigs) {
  const auto specs = make_tenant_specs(2, 0, 10 * kMillisecond);
  RoundRobinPlacement policy;
  FleetConfig config = small_config();
  config.devices = 0;
  EXPECT_THROW(run_fleet(config, specs, policy, 1), std::invalid_argument);
  config = small_config();
  config.slots_per_device = 5;
  EXPECT_THROW(run_fleet(config, specs, policy, 1), std::invalid_argument);
  config = small_config();
  config.epochs = 0;
  EXPECT_THROW(run_fleet(config, specs, policy, 1), std::invalid_argument);
  config = small_config();
  EXPECT_THROW(run_fleet(config, {}, policy, 1), std::invalid_argument);
}

TEST(FleetReport, TablesAndCsvsCoverTheResult) {
  const FleetConfig config = small_config();
  const auto specs = make_tenant_specs(4, 0, config.epoch_ns);
  WorkloadAwarePlacement policy;
  const FleetResult result = run_fleet(config, specs, policy, 2);

  const std::string report = format_report(result);
  EXPECT_NE(report.find("workload_aware"), std::string::npos);
  EXPECT_NE(report.find("## Devices"), std::string::npos);
  EXPECT_NE(report.find("## Tenants"), std::string::npos);

  std::ostringstream devices, tenants, rollups;
  write_device_csv(devices, result);
  write_tenant_csv(tenants, result);
  write_rollup_csv(rollups, result);

  std::istringstream dev_in(devices.str());
  std::string line;
  std::getline(dev_in, line);
  const auto header = split_csv_line(line);
  std::size_t rows = 0;
  while (std::getline(dev_in, line)) {
    EXPECT_EQ(split_csv_line(line).size(), header.size());
    ++rows;
  }
  EXPECT_EQ(rows, config.devices);

  std::istringstream ten_in(tenants.str());
  std::getline(ten_in, line);
  rows = 0;
  while (std::getline(ten_in, line)) ++rows;
  EXPECT_EQ(rows, specs.size());

  std::istringstream roll_in(rollups.str());
  std::getline(roll_in, line);
  rows = 0;
  while (std::getline(roll_in, line)) ++rows;
  EXPECT_EQ(rows, static_cast<std::size_t>(config.devices) * config.epochs);
}

}  // namespace
}  // namespace ssdk::fleet
