#include "nn/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ssdk::nn {
namespace {

TEST(Activation, StringRoundTrip) {
  for (const auto a : {Activation::kIdentity, Activation::kReLU,
                       Activation::kLogistic, Activation::kTanh}) {
    EXPECT_EQ(activation_from_string(to_string(a)), a);
  }
  EXPECT_THROW(activation_from_string("swish"), std::invalid_argument);
}

TEST(Activation, ReLUClampsNegatives) {
  const Matrix z{{-1.0, 0.0, 2.0}};
  Matrix y;
  apply_activation(Activation::kReLU, z, y);
  EXPECT_EQ(y(0, 0), 0.0);
  EXPECT_EQ(y(0, 1), 0.0);
  EXPECT_EQ(y(0, 2), 2.0);
}

TEST(Activation, LogisticRange) {
  const Matrix z{{-100.0, 0.0, 100.0}};
  Matrix y;
  apply_activation(Activation::kLogistic, z, y);
  EXPECT_NEAR(y(0, 0), 0.0, 1e-10);
  EXPECT_DOUBLE_EQ(y(0, 1), 0.5);
  EXPECT_NEAR(y(0, 2), 1.0, 1e-10);
}

TEST(Activation, TanhMatchesStd) {
  const Matrix z{{0.7}};
  Matrix y;
  apply_activation(Activation::kTanh, z, y);
  EXPECT_DOUBLE_EQ(y(0, 0), std::tanh(0.7));
}

TEST(Activation, InPlaceAliasing) {
  Matrix z{{-3.0, 3.0}};
  apply_activation(Activation::kReLU, z, z);
  EXPECT_EQ(z(0, 0), 0.0);
  EXPECT_EQ(z(0, 1), 3.0);
}

TEST(ActivationDerivative, FromOutputValues) {
  // logistic'(z) = y(1-y); at y=0.5 -> 0.25.
  const Matrix y{{0.5}};
  Matrix d;
  activation_derivative_from_output(Activation::kLogistic, y, d);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.25);

  const Matrix yr{{0.0, 1.5}};
  activation_derivative_from_output(Activation::kReLU, yr, d);
  EXPECT_EQ(d(0, 0), 0.0);
  EXPECT_EQ(d(0, 1), 1.0);

  const Matrix yt{{0.5}};
  activation_derivative_from_output(Activation::kTanh, yt, d);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.75);

  const Matrix yi{{123.0}};
  activation_derivative_from_output(Activation::kIdentity, yi, d);
  EXPECT_EQ(d(0, 0), 1.0);
}

TEST(Softmax, RowsSumToOne) {
  const Matrix z{{1.0, 2.0, 3.0}, {-5.0, 0.0, 5.0}};
  Matrix p;
  softmax_rows(z, p);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += p(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(p(0, 2), p(0, 1));
  EXPECT_GT(p(0, 1), p(0, 0));
}

TEST(Softmax, StableUnderLargeLogits) {
  const Matrix z{{1000.0, 1001.0}};
  Matrix p;
  softmax_rows(z, p);
  EXPECT_FALSE(std::isnan(p(0, 0)));
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0, 1e-12);
  EXPECT_GT(p(0, 1), p(0, 0));
}

}  // namespace
}  // namespace ssdk::nn
