#include "nn/metrics.hpp"

#include <gtest/gtest.h>

namespace ssdk::nn {
namespace {

TEST(Accuracy, BasicFractions) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(accuracy({5}, {5}), 1.0);
}

TEST(TopK, TrueClassWithinK) {
  const Matrix logits{{0.1, 0.5, 0.4}, {0.9, 0.04, 0.06}};
  const std::vector<std::uint32_t> truth{2, 1};
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, truth, 1), 0.0);
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, truth, 2), 0.5);
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, truth, 3), 1.0);
}

TEST(TopK, KLargerThanClassesClamps) {
  const Matrix logits{{0.1, 0.9}};
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {0}, 10), 1.0);
}

TEST(ConfusionMatrix, CountsByTruthRow) {
  const std::vector<std::uint32_t> pred{0, 1, 1, 2};
  const std::vector<std::uint32_t> truth{0, 1, 2, 2};
  const Matrix cm = confusion_matrix(pred, truth, 3);
  EXPECT_EQ(cm(0, 0), 1.0);
  EXPECT_EQ(cm(1, 1), 1.0);
  EXPECT_EQ(cm(2, 1), 1.0);
  EXPECT_EQ(cm(2, 2), 1.0);
  EXPECT_EQ(cm(0, 1), 0.0);
}

TEST(MacroF1, PerfectPredictionIsOne) {
  const std::vector<std::uint32_t> y{0, 1, 2, 0, 1, 2};
  EXPECT_DOUBLE_EQ(macro_f1(y, y, 3), 1.0);
}

TEST(MacroF1, IgnoresAbsentClasses) {
  // Class 2 never appears in truth; F1 averaged over classes 0 and 1 only.
  const std::vector<std::uint32_t> pred{0, 1};
  const std::vector<std::uint32_t> truth{0, 1};
  EXPECT_DOUBLE_EQ(macro_f1(pred, truth, 3), 1.0);
}

TEST(MacroF1, AllWrongIsZero) {
  const std::vector<std::uint32_t> pred{1, 0};
  const std::vector<std::uint32_t> truth{0, 1};
  EXPECT_DOUBLE_EQ(macro_f1(pred, truth, 2), 0.0);
}

}  // namespace
}  // namespace ssdk::nn
