#include "nn/naive_bayes.hpp"

#include <gtest/gtest.h>

#include "nn/metrics.hpp"
#include "util/rng.hpp"

namespace ssdk::nn {
namespace {

Dataset blobs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 2);
  std::vector<std::uint32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t cls = static_cast<std::uint32_t>(i % 3);
    const double cx = cls == 0 ? -4.0 : (cls == 1 ? 0.0 : 4.0);
    x(i, 0) = rng.normal(cx, 0.7);
    x(i, 1) = rng.normal(cls == 1 ? 3.0 : -1.0, 0.7);
    y[i] = cls;
  }
  return Dataset(std::move(x), std::move(y));
}

TEST(NaiveBayes, RejectsBadInputs) {
  EXPECT_THROW(NaiveBayesClassifier(0.0), std::invalid_argument);
  NaiveBayesClassifier nb;
  EXPECT_THROW(nb.fit(Dataset()), std::invalid_argument);
  EXPECT_THROW(nb.predict(Matrix(1, 2)), std::logic_error);
}

TEST(NaiveBayes, SeparableBlobsHighAccuracy) {
  NaiveBayesClassifier nb;
  nb.fit(blobs(300, 1));
  const Dataset test = blobs(90, 2);
  const double acc = accuracy(nb.predict(test.features()), test.labels());
  EXPECT_GT(acc, 0.95);
}

TEST(NaiveBayes, RecoversClassMeans) {
  // Deterministic two-point classes: prediction follows proximity.
  Matrix x{{0.0, 0.0}, {0.2, 0.0}, {10.0, 0.0}, {10.2, 0.0}};
  NaiveBayesClassifier nb;
  nb.fit(Dataset(std::move(x), {0, 0, 1, 1}));
  EXPECT_EQ(nb.predict(Matrix{{1.0, 0.0}})[0], 0u);
  EXPECT_EQ(nb.predict(Matrix{{9.0, 0.0}})[0], 1u);
}

TEST(NaiveBayes, PriorsBreakNearTies) {
  // Overlapping classes with a 3:1 prior: ambiguous points go to the
  // majority class.
  Rng rng(3);
  Matrix x(200, 1);
  std::vector<std::uint32_t> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const bool majority = i % 4 != 0;
    x(i, 0) = rng.normal(0.0, 1.0);  // same distribution for both
    y[i] = majority ? 0 : 1;
  }
  NaiveBayesClassifier nb;
  nb.fit(Dataset(std::move(x), std::move(y)));
  EXPECT_EQ(nb.predict(Matrix{{0.0}})[0], 0u);
}

TEST(NaiveBayes, UnseenClassNeverPredicted) {
  // Labels {0, 2}: class 1 absent -> prior -inf.
  Matrix x{{0.0}, {5.0}};
  NaiveBayesClassifier nb;
  nb.fit(Dataset(std::move(x), {0, 2}));
  EXPECT_EQ(nb.num_classes(), 3u);
  const auto pred = nb.predict(Matrix{{2.4}, {2.6}});
  EXPECT_EQ(pred[0], 0u);
  EXPECT_EQ(pred[1], 2u);
}

TEST(NaiveBayes, ZeroVarianceHandledByFloor) {
  Matrix x{{1.0}, {1.0}, {2.0}, {2.0}};
  NaiveBayesClassifier nb;
  nb.fit(Dataset(std::move(x), {0, 0, 1, 1}));
  EXPECT_EQ(nb.predict(Matrix{{1.01}})[0], 0u);
  EXPECT_EQ(nb.predict(Matrix{{1.99}})[0], 1u);
}

TEST(NaiveBayes, MemoryIndependentOfDatasetSize) {
  NaiveBayesClassifier small, large;
  small.fit(blobs(60, 5));
  large.fit(blobs(600, 5));
  EXPECT_EQ(small.memory_bytes(), large.memory_bytes());
}

}  // namespace
}  // namespace ssdk::nn
