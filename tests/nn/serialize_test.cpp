#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ssdk::nn {
namespace {

TEST(Serialize, RoundTripPreservesOutputsExactly) {
  Mlp model({9, 64, 42}, Activation::kLogistic, 99);
  std::stringstream ss;
  save_model(ss, model);
  LoadedModel loaded = load_model(ss);
  EXPECT_FALSE(loaded.scaler.has_value());

  Matrix x(3, 9);
  Rng rng(1);
  for (auto& v : x.raw()) v = rng.normal(0.0, 1.0);
  const Matrix& y1 = model.forward(x);
  const Matrix y1_copy = y1;
  const Matrix& y2 = loaded.model.forward(x);
  ASSERT_TRUE(y1_copy.same_shape(y2));
  for (std::size_t i = 0; i < y2.size(); ++i) {
    EXPECT_EQ(y1_copy.raw()[i], y2.raw()[i]);  // bit-exact via hexfloat
  }
}

TEST(Serialize, RoundTripWithScaler) {
  Mlp model({2, 3, 2}, Activation::kReLU, 7);
  StandardScaler scaler;
  scaler.set_parameters({1.5, -2.0}, {0.5, 3.0});
  std::stringstream ss;
  save_model(ss, model, &scaler);
  LoadedModel loaded = load_model(ss);
  ASSERT_TRUE(loaded.scaler.has_value());
  EXPECT_EQ(loaded.scaler->mean()[0], 1.5);
  EXPECT_EQ(loaded.scaler->stddev()[1], 3.0);
}

TEST(Serialize, PreservesActivations) {
  Mlp model({2, 4, 4, 2}, Activation::kTanh, 3);
  std::stringstream ss;
  save_model(ss, model);
  const LoadedModel loaded = load_model(ss);
  ASSERT_EQ(loaded.model.num_layers(), 3u);
  EXPECT_EQ(loaded.model.layer(0).activation(), Activation::kTanh);
  EXPECT_EQ(loaded.model.layer(2).activation(), Activation::kIdentity);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss("not-a-model\n");
  EXPECT_THROW(load_model(ss), std::runtime_error);
}

TEST(Serialize, TruncatedFileThrows) {
  Mlp model({2, 3, 2}, Activation::kReLU, 7);
  std::stringstream ss;
  save_model(ss, model);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_model(truncated), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/ssdk_model_test.txt";
  Mlp model({3, 4, 2}, Activation::kLogistic, 11);
  save_model_file(path, model);
  const LoadedModel loaded = load_model_file(path);
  EXPECT_EQ(loaded.model.input_size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW(load_model_file("/nonexistent/model.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace ssdk::nn
