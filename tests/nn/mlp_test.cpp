#include "nn/mlp.hpp"

#include <gtest/gtest.h>

namespace ssdk::nn {
namespace {

TEST(Mlp, PaperShape) {
  Mlp model({9, 64, 42}, Activation::kLogistic, 1);
  EXPECT_EQ(model.num_layers(), 2u);
  EXPECT_EQ(model.input_size(), 9u);
  EXPECT_EQ(model.output_size(), 42u);
  // Paper Section IV.D: multiplications = sum N_i * N_{i+1}.
  EXPECT_EQ(model.multiplications_per_inference(), 9u * 64 + 64u * 42);
  EXPECT_EQ(model.parameter_count(), 9u * 64 + 64 + 64u * 42 + 42);
}

TEST(Mlp, RejectsTooFewLayers) {
  EXPECT_THROW(Mlp({5}, Activation::kReLU, 1), std::invalid_argument);
}

TEST(Mlp, OutputLayerIsLinear) {
  Mlp model({2, 3, 2}, Activation::kReLU, 2);
  EXPECT_EQ(model.layer(0).activation(), Activation::kReLU);
  EXPECT_EQ(model.layer(1).activation(), Activation::kIdentity);
}

TEST(Mlp, ForwardShape) {
  Mlp model({4, 8, 3}, Activation::kTanh, 3);
  const Matrix x(10, 4, 0.5);
  const Matrix& logits = model.forward(x);
  EXPECT_EQ(logits.rows(), 10u);
  EXPECT_EQ(logits.cols(), 3u);
}

TEST(Mlp, DeterministicGivenSeed) {
  Mlp a({3, 5, 2}, Activation::kReLU, 42);
  Mlp b({3, 5, 2}, Activation::kReLU, 42);
  const Matrix x(1, 3, 1.0);
  const Matrix& ya = a.forward(x);
  const Matrix yb = b.forward(x);
  EXPECT_EQ(ya(0, 0), yb(0, 0));
  EXPECT_EQ(ya(0, 1), yb(0, 1));
}

TEST(Mlp, PredictReturnsArgmax) {
  // Identity-ish model constructed by hand: logits = x.
  std::vector<DenseLayer> layers;
  Matrix w{{1.0, 0.0}, {0.0, 1.0}};
  Matrix b(1, 2);
  layers.emplace_back(std::move(w), std::move(b), Activation::kIdentity);
  Mlp model(std::move(layers));
  const Matrix x{{0.1, 0.9}, {2.0, -1.0}};
  const auto preds = model.predict(x);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], 1u);
  EXPECT_EQ(preds[1], 0u);
}

TEST(Mlp, PredictProbaRowsSumToOne) {
  Mlp model({3, 4, 5}, Activation::kLogistic, 7);
  const Matrix x(6, 3, 0.2);
  const Matrix p = model.predict_proba(x);
  for (std::size_t r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < p.cols(); ++c) sum += p(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Mlp, LayerShapeMismatchThrows) {
  std::vector<DenseLayer> layers;
  layers.emplace_back(Matrix(2, 3), Matrix(1, 3), Activation::kReLU);
  layers.emplace_back(Matrix(4, 2), Matrix(1, 2), Activation::kIdentity);
  EXPECT_THROW(Mlp model(std::move(layers)), std::invalid_argument);
}

TEST(Mlp, TrainLossDecreasesWithSteps) {
  // Tiny separable problem: class = argmax coordinate.
  Mlp model({2, 8, 2}, Activation::kReLU, 11);
  Matrix x{{1.0, 0.0}, {0.0, 1.0}, {0.9, 0.1}, {0.2, 0.8}};
  const std::vector<std::uint32_t> y{0, 1, 0, 1};
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 200; ++step) {
    model.zero_grad();
    const double loss = model.train_loss_and_grad(x, y);
    if (step == 0) first = loss;
    last = loss;
    // Plain gradient descent.
    for (std::size_t li = 0; li < model.num_layers(); ++li) {
      auto& layer = model.mutable_layer(li);
      layer.mutable_weights().axpy(-0.5, layer.grad_weights());
      layer.mutable_bias().axpy(-0.5, layer.grad_bias());
    }
  }
  EXPECT_LT(last, first * 0.1);
}

}  // namespace
}  // namespace ssdk::nn
