#include "nn/layer.hpp"

#include <gtest/gtest.h>

namespace ssdk::nn {
namespace {

TEST(DenseLayer, ForwardComputesAffine) {
  Matrix w{{1.0, 0.0}, {0.0, 2.0}};  // 2x2
  Matrix b{{0.5, -0.5}};
  DenseLayer layer(std::move(w), std::move(b), Activation::kIdentity);
  const Matrix x{{3.0, 4.0}};
  const Matrix& y = layer.forward(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(y(0, 1), 7.5);
}

TEST(DenseLayer, ForwardAppliesActivation) {
  Matrix w{{1.0}, {1.0}};  // 2x1
  Matrix b{{-10.0}};
  DenseLayer layer(std::move(w), std::move(b), Activation::kReLU);
  const Matrix x{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(layer.forward(x)(0, 0), 0.0);  // relu(-7)
}

TEST(DenseLayer, RandomInitHasReasonableScale) {
  Rng rng(5);
  DenseLayer layer(64, 32, Activation::kReLU, rng);
  double max_abs = 0.0;
  for (const double v : layer.weights().raw()) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  EXPECT_GT(max_abs, 0.0);
  EXPECT_LT(max_abs, 2.0);
  for (const double v : layer.bias().raw()) EXPECT_EQ(v, 0.0);
}

TEST(DenseLayer, BackwardShapes) {
  Rng rng(7);
  DenseLayer layer(3, 2, Activation::kTanh, rng);
  const Matrix x(5, 3, 0.1);
  layer.forward(x);
  const Matrix grad_out(5, 2, 1.0);
  const Matrix& grad_in = layer.backward(grad_out);
  EXPECT_EQ(grad_in.rows(), 5u);
  EXPECT_EQ(grad_in.cols(), 3u);
  EXPECT_EQ(layer.grad_weights().rows(), 3u);
  EXPECT_EQ(layer.grad_weights().cols(), 2u);
  EXPECT_EQ(layer.grad_bias().cols(), 2u);
}

TEST(DenseLayer, BiasGradientIsColumnSum) {
  Matrix w{{1.0}};
  Matrix b{{0.0}};
  DenseLayer layer(std::move(w), std::move(b), Activation::kIdentity);
  const Matrix x{{1.0}, {2.0}, {3.0}};
  layer.forward(x);
  const Matrix grad_out{{1.0}, {1.0}, {1.0}};
  layer.backward(grad_out);
  EXPECT_DOUBLE_EQ(layer.grad_bias()(0, 0), 3.0);
  // dW = x^T grad = 1+2+3.
  EXPECT_DOUBLE_EQ(layer.grad_weights()(0, 0), 6.0);
}

TEST(DenseLayer, ZeroGradClears) {
  Rng rng(9);
  DenseLayer layer(2, 2, Activation::kIdentity, rng);
  layer.forward(Matrix(1, 2, 1.0));
  layer.backward(Matrix(1, 2, 1.0));
  layer.zero_grad();
  for (const double v : layer.grad_weights().raw()) EXPECT_EQ(v, 0.0);
  for (const double v : layer.grad_bias().raw()) EXPECT_EQ(v, 0.0);
}

TEST(DenseLayer, ParameterCount) {
  Rng rng(11);
  DenseLayer layer(9, 64, Activation::kLogistic, rng);
  EXPECT_EQ(layer.parameter_count(), 9u * 64u + 64u);
}

TEST(DenseLayer, ShapeMismatchRejectedByConstructor) {
  Matrix w(2, 3);
  Matrix bad_bias(1, 2);
  EXPECT_THROW(DenseLayer(std::move(w), std::move(bad_bias),
                          Activation::kIdentity),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssdk::nn
