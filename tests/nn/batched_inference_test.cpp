// The batched inference path (matmul_into / DenseLayer::forward_into /
// Mlp::forward_inference) is a layout-and-allocation optimization, not a
// numerical change: for every batch size its logits must equal the
// training forward() bit for bit, per-row inference must equal batched
// inference, and interleaving it with training must leave gradients
// untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ssdk::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     double zero_fraction = 0.0) {
  Matrix m(rows, cols);
  for (auto& v : m.raw()) {
    v = rng.bernoulli(zero_fraction) ? 0.0 : rng.normal(0.0, 1.0);
  }
  return m;
}

TEST(BatchedInference, MatmulIntoMatchesMatmulAcrossShapes) {
  Rng rng(41);
  // Shapes straddle the 4-row block boundary and include zeros to
  // exercise the skip path in both kernels.
  for (const std::size_t m : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 32u}) {
    Matrix a = random_matrix(m, 9, rng, 0.3);
    Matrix b = random_matrix(9, 64, rng);
    Matrix expected;
    matmul(a, b, expected);
    // Pre-dirty the destination: matmul_into must fully overwrite it.
    Matrix out(m, 64, 123.0);
    matmul_into(a, b, out);
    EXPECT_EQ(out.raw(), expected.raw()) << "m=" << m;
    // Second call reuses storage; result unchanged.
    matmul_into(a, b, out);
    EXPECT_EQ(out.raw(), expected.raw()) << "m=" << m << " (reuse)";
  }
}

TEST(BatchedInference, ForwardInferenceMatchesTrainingForward) {
  Rng rng(7);
  Mlp model({9, 64, 42}, Activation::kReLU, 99);
  for (const std::size_t batch : {1u, 2u, 4u, 5u, 16u, 33u}) {
    const Matrix x = random_matrix(batch, 9, rng);
    Mlp reference = model;  // keep `model`'s caches out of the comparison
    const Matrix& trained = reference.forward(x);
    const Matrix& inferred = model.forward_inference(x);
    ASSERT_EQ(inferred.rows(), trained.rows());
    ASSERT_EQ(inferred.cols(), trained.cols());
    EXPECT_EQ(inferred.raw(), trained.raw()) << "batch " << batch;
  }
}

TEST(BatchedInference, BatchedPredictMatchesPerRowPredict) {
  Rng rng(11);
  Mlp model({9, 64, 42}, Activation::kReLU, 5);
  const std::size_t batch = 37;
  const Matrix x = random_matrix(batch, 9, rng);
  const std::vector<std::uint32_t> batched = model.predict(x);
  ASSERT_EQ(batched.size(), batch);
  for (std::size_t r = 0; r < batch; ++r) {
    Matrix row(1, 9);
    for (std::size_t c = 0; c < 9; ++c) row(0, c) = x(r, c);
    const auto single = model.predict(row);
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0], batched[r]) << "row " << r;
  }
}

TEST(BatchedInference, InferenceDoesNotPerturbTrainingGradients) {
  Rng rng(17);
  const Matrix x = random_matrix(12, 9, rng);
  std::vector<std::uint32_t> labels(12);
  for (auto& l : labels) {
    l = static_cast<std::uint32_t>(rng.next_u64() % 42);
  }

  Mlp clean({9, 64, 42}, Activation::kReLU, 3);
  Mlp interleaved = clean;

  clean.zero_grad();
  const double clean_loss = clean.train_loss_and_grad(x, labels);

  // Run inference between zero_grad and the training step: the gradients
  // must be what the clean model computes, bit for bit.
  interleaved.zero_grad();
  const Matrix probe = random_matrix(29, 9, rng);
  (void)interleaved.forward_inference(probe);
  (void)interleaved.predict(probe);
  const double loss = interleaved.train_loss_and_grad(x, labels);

  EXPECT_EQ(loss, clean_loss);
  for (std::size_t i = 0; i < clean.num_layers(); ++i) {
    EXPECT_EQ(interleaved.layer(i).grad_weights().raw(),
              clean.layer(i).grad_weights().raw())
        << "layer " << i;
    EXPECT_EQ(interleaved.layer(i).grad_bias().raw(),
              clean.layer(i).grad_bias().raw())
        << "layer " << i;
  }
}

}  // namespace
}  // namespace ssdk::nn
