#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include "nn/loss.hpp"

namespace ssdk::nn {
namespace {

/// Train a small model on a separable toy problem with the given optimizer
/// and return the final loss.
double train_toy(Optimizer& opt, int steps = 150) {
  Mlp model({2, 8, 2}, Activation::kTanh, 21);
  Matrix x{{1.0, 0.0}, {0.0, 1.0}, {0.8, 0.2}, {0.3, 0.7},
           {0.9, 0.4}, {0.1, 0.6}};
  const std::vector<std::uint32_t> y{0, 1, 0, 1, 0, 1};
  double loss = 0.0;
  for (int s = 0; s < steps; ++s) {
    model.zero_grad();
    loss = model.train_loss_and_grad(x, y);
    opt.step(model);
  }
  return loss;
}

TEST(Optimizer, FactoryKnowsAllNames) {
  for (const char* name :
       {"sgd", "sgd-momentum", "adagrad", "rmsprop", "adam"}) {
    const auto opt = make_optimizer(name);
    EXPECT_EQ(opt->name(), name);
  }
  EXPECT_THROW(make_optimizer("lbfgs"), std::invalid_argument);
}

TEST(Optimizer, SgdStepIsPlainDescent) {
  std::vector<DenseLayer> layers;
  layers.emplace_back(Matrix{{1.0}}, Matrix{{2.0}}, Activation::kIdentity);
  Mlp model(std::move(layers));
  model.mutable_layer(0).mutable_grad_weights()(0, 0) = 0.5;
  model.mutable_layer(0).mutable_grad_bias()(0, 0) = -1.0;
  Sgd sgd(0.1);
  sgd.step(model);
  EXPECT_DOUBLE_EQ(model.layer(0).weights()(0, 0), 0.95);
  EXPECT_DOUBLE_EQ(model.layer(0).bias()(0, 0), 2.1);
}

TEST(Optimizer, MomentumAccumulatesVelocity) {
  std::vector<DenseLayer> layers;
  layers.emplace_back(Matrix{{0.0}}, Matrix{{0.0}}, Activation::kIdentity);
  Mlp model(std::move(layers));
  SgdMomentum opt(0.1, 0.9);
  // Constant gradient 1.0 twice: v1 = -0.1, v2 = -0.19.
  model.mutable_layer(0).mutable_grad_weights()(0, 0) = 1.0;
  opt.step(model);
  EXPECT_NEAR(model.layer(0).weights()(0, 0), -0.1, 1e-12);
  model.mutable_layer(0).mutable_grad_weights()(0, 0) = 1.0;
  opt.step(model);
  EXPECT_NEAR(model.layer(0).weights()(0, 0), -0.29, 1e-12);
}

TEST(Optimizer, AdamFirstStepApproachesLr) {
  std::vector<DenseLayer> layers;
  layers.emplace_back(Matrix{{0.0}}, Matrix{{0.0}}, Activation::kIdentity);
  Mlp model(std::move(layers));
  Adam opt(0.02);
  model.mutable_layer(0).mutable_grad_weights()(0, 0) = 3.0;
  opt.step(model);
  // With bias correction, the first Adam step is ~lr regardless of scale.
  EXPECT_NEAR(model.layer(0).weights()(0, 0), -0.02, 1e-6);
}

TEST(Optimizer, AllOptimizersConvergeOnToyProblem) {
  for (const char* name :
       {"sgd", "sgd-momentum", "adagrad", "rmsprop", "adam"}) {
    const auto opt = make_optimizer(name);
    const double final_loss = train_toy(*opt);
    EXPECT_LT(final_loss, 0.2) << name;
  }
}

TEST(Optimizer, AdamBeatsPlainSgdOnToyProblem) {
  Sgd sgd(0.02);  // same small lr as Adam -> slower
  Adam adam(0.02);
  const double sgd_loss = train_toy(sgd, 60);
  const double adam_loss = train_toy(adam, 60);
  EXPECT_LT(adam_loss, sgd_loss);
}

TEST(Optimizer, StateIsPerParameterSlot) {
  // Two layers must not share momentum state.
  std::vector<DenseLayer> layers;
  layers.emplace_back(Matrix{{0.0}}, Matrix{{0.0}}, Activation::kIdentity);
  layers.emplace_back(Matrix{{0.0}}, Matrix{{0.0}}, Activation::kIdentity);
  Mlp model(std::move(layers));
  SgdMomentum opt(0.1, 0.9);
  model.mutable_layer(0).mutable_grad_weights()(0, 0) = 1.0;
  model.mutable_layer(1).mutable_grad_weights()(0, 0) = -1.0;
  opt.step(model);
  EXPECT_NEAR(model.layer(0).weights()(0, 0), -0.1, 1e-12);
  EXPECT_NEAR(model.layer(1).weights()(0, 0), 0.1, 1e-12);
}

}  // namespace
}  // namespace ssdk::nn
