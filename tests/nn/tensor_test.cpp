#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace ssdk::nn {
namespace {

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, FillAndZero) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m(1, 2), 1.5);
  m.zero();
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a{{1.0, 2.0}};
  const Matrix b{{3.0, 4.0}};
  a += b;
  EXPECT_EQ(a(0, 0), 4.0);
  a -= b;
  EXPECT_EQ(a(0, 1), 2.0);
  a *= 2.0;
  EXPECT_EQ(a(0, 0), 2.0);
  a.axpy(0.5, b);
  EXPECT_EQ(a(0, 1), 6.0);
}

TEST(Matmul, KnownProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c;
  matmul(a, b, c);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matmul, RectangularShapes) {
  const Matrix a(3, 5, 1.0);
  const Matrix b(5, 2, 2.0);
  Matrix c;
  matmul(a, b, c);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_EQ(c(2, 1), 10.0);
}

TEST(MatmulAtB, MatchesExplicitTranspose) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};  // 3x2
  const Matrix b{{1.0}, {2.0}, {3.0}};                 // 3x1
  Matrix c;
  matmul_at_b(a, b, c);  // (2x3)*(3x1) = 2x1
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_EQ(c(0, 0), 22.0);  // 1+6+15
  EXPECT_EQ(c(1, 0), 28.0);  // 2+8+18
}

TEST(MatmulABt, MatchesExplicitTranspose) {
  const Matrix a{{1.0, 2.0}};          // 1x2
  const Matrix b{{3.0, 4.0}, {5.0, 6.0}};  // 2x2 -> b^T is 2x2
  Matrix c;
  matmul_a_bt(a, b, c);  // 1x2
  EXPECT_EQ(c(0, 0), 11.0);  // 1*3+2*4
  EXPECT_EQ(c(0, 1), 17.0);  // 1*5+2*6
}

TEST(Broadcast, AddRowVector) {
  Matrix m{{1.0, 1.0}, {2.0, 2.0}};
  const Matrix bias{{10.0, 20.0}};
  add_row_broadcast(m, bias);
  EXPECT_EQ(m(0, 0), 11.0);
  EXPECT_EQ(m(1, 1), 22.0);
}

TEST(ColumnSums, SumsEachColumn) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Matrix s;
  column_sums(m, s);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_EQ(s(0, 0), 4.0);
  EXPECT_EQ(s(0, 1), 6.0);
}

TEST(Hadamard, Elementwise) {
  const Matrix a{{2.0, 3.0}};
  const Matrix b{{4.0, 5.0}};
  Matrix c;
  hadamard(a, b, c);
  EXPECT_EQ(c(0, 0), 8.0);
  EXPECT_EQ(c(0, 1), 15.0);
}

TEST(Frobenius, KnownNorm) {
  const Matrix m{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
}

}  // namespace
}  // namespace ssdk::nn
