#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "nn/optimizer.hpp"

namespace ssdk::nn {
namespace {

/// Two gaussian blobs, linearly separable.
Dataset make_blobs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 2);
  std::vector<std::uint32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cls = i % 2 == 0;
    x(i, 0) = rng.normal(cls ? 2.0 : -2.0, 0.5);
    x(i, 1) = rng.normal(cls ? -1.0 : 1.0, 0.5);
    y[i] = cls ? 1 : 0;
  }
  return Dataset(std::move(x), std::move(y));
}

TEST(Trainer, LearnsSeparableProblem) {
  const Dataset train = make_blobs(200, 1);
  const Dataset test = make_blobs(60, 2);
  Mlp model({2, 8, 2}, Activation::kReLU, 5);
  Adam opt(0.02);
  TrainOptions options;
  options.max_iterations = 30;
  const TrainHistory h = train_classifier(model, opt, train, test, options);
  EXPECT_GT(h.final_accuracy, 0.95);
  EXPECT_LT(h.final_loss, 0.3);
  EXPECT_EQ(h.train_loss.size(), 30u);
  EXPECT_FALSE(h.test_accuracy.empty());
  EXPECT_GT(h.wall_time_ms, 0.0);
  EXPECT_EQ(h.optimizer_name, "adam");
}

TEST(Trainer, LossSeriesBroadlyDecreases) {
  const Dataset train = make_blobs(100, 3);
  Mlp model({2, 6, 2}, Activation::kTanh, 6);
  SgdMomentum opt(0.2, 0.9);
  TrainOptions options;
  options.max_iterations = 40;
  const TrainHistory h =
      train_classifier(model, opt, train, Dataset(), options);
  EXPECT_LT(h.train_loss.back(), h.train_loss.front());
}

TEST(Trainer, EmptyTrainReturnsEmptyHistory) {
  Mlp model({2, 4, 2}, Activation::kReLU, 7);
  Sgd opt(0.1);
  const TrainHistory h =
      train_classifier(model, opt, Dataset(), Dataset(), TrainOptions{});
  EXPECT_TRUE(h.train_loss.empty());
  EXPECT_EQ(h.final_loss, 0.0);
}

TEST(Trainer, EvalEveryThinsAccuracySeries) {
  const Dataset train = make_blobs(50, 8);
  const Dataset test = make_blobs(20, 9);
  Mlp model({2, 4, 2}, Activation::kReLU, 10);
  Adam opt(0.02);
  TrainOptions options;
  options.max_iterations = 10;
  options.eval_every = 5;
  const TrainHistory h = train_classifier(model, opt, train, test, options);
  // Epochs 0, 5 and the final epoch.
  EXPECT_EQ(h.test_accuracy.size(), 3u);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const Dataset train = make_blobs(80, 11);
  const Dataset test = make_blobs(20, 12);
  TrainOptions options;
  options.max_iterations = 15;

  Mlp m1({2, 6, 2}, Activation::kReLU, 13);
  Adam o1(0.02);
  const auto h1 = train_classifier(m1, o1, train, test, options);

  Mlp m2({2, 6, 2}, Activation::kReLU, 13);
  Adam o2(0.02);
  const auto h2 = train_classifier(m2, o2, train, test, options);

  ASSERT_EQ(h1.train_loss.size(), h2.train_loss.size());
  for (std::size_t i = 0; i < h1.train_loss.size(); ++i) {
    EXPECT_DOUBLE_EQ(h1.train_loss[i], h2.train_loss[i]);
  }
  EXPECT_DOUBLE_EQ(h1.final_accuracy, h2.final_accuracy);
}

TEST(Evaluate, ReturnsLossAndAccuracy) {
  const Dataset data = make_blobs(40, 14);
  Mlp model({2, 4, 2}, Activation::kReLU, 15);
  const auto [loss, acc] = evaluate(model, data);
  EXPECT_GT(loss, 0.0);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  const auto [l0, a0] = evaluate(model, Dataset());
  EXPECT_EQ(l0, 0.0);
  EXPECT_EQ(a0, 0.0);
}

}  // namespace
}  // namespace ssdk::nn
