#include "nn/knn.hpp"

#include <gtest/gtest.h>

namespace ssdk::nn {
namespace {

Dataset blobs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 2);
  std::vector<std::uint32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cls = i % 2 == 0;
    x(i, 0) = rng.normal(cls ? 3.0 : -3.0, 0.5);
    x(i, 1) = rng.normal(cls ? -1.0 : 1.0, 0.5);
    y[i] = cls ? 1 : 0;
  }
  return Dataset(std::move(x), std::move(y));
}

TEST(Knn, RejectsBadInputs) {
  EXPECT_THROW(KnnClassifier(0), std::invalid_argument);
  KnnClassifier knn(3);
  EXPECT_THROW(knn.fit(Dataset()), std::invalid_argument);
  EXPECT_THROW(knn.predict(Matrix(1, 2)), std::logic_error);
}

TEST(Knn, NearestNeighborExact) {
  KnnClassifier knn(1);
  Matrix x{{0.0, 0.0}, {10.0, 10.0}};
  knn.fit(Dataset(std::move(x), {7, 9}));
  const Matrix q{{1.0, 1.0}, {9.0, 9.0}};
  const auto preds = knn.predict(q);
  EXPECT_EQ(preds[0], 7u);
  EXPECT_EQ(preds[1], 9u);
}

TEST(Knn, MajorityVoteOverrulesSingleNeighbor) {
  KnnClassifier knn(3);
  // Two class-1 points near the query, one class-0 point nearest.
  Matrix x{{0.0}, {0.3}, {0.4}};
  knn.fit(Dataset(std::move(x), {0, 1, 1}));
  const Matrix q{{0.1}};
  EXPECT_EQ(knn.predict(q)[0], 1u);
}

TEST(Knn, KLargerThanDatasetClamps) {
  KnnClassifier knn(100);
  Matrix x{{0.0}, {1.0}};
  knn.fit(Dataset(std::move(x), {0, 1}));
  EXPECT_NO_THROW(knn.predict(Matrix{{0.2}}));
}

TEST(Knn, SeparableBlobsHighAccuracy) {
  KnnClassifier knn(5);
  knn.fit(blobs(200, 1));
  const Dataset test = blobs(60, 2);
  const auto preds = knn.predict(test.features());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == test.labels()[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(preds.size()),
            0.95);
}

TEST(Knn, MemoryScalesWithTrainingSet) {
  KnnClassifier small(3), large(3);
  small.fit(blobs(50, 3));
  large.fit(blobs(500, 3));
  EXPECT_GT(large.memory_bytes(), small.memory_bytes() * 9);
  // The paper's point: a 9->64->42 MLP stores ~3.4k parameters, while
  // knn at its dataset scale stores every sample.
  EXPECT_EQ(small.memory_bytes(), 50u * (2 * sizeof(double) +
                                         sizeof(std::uint32_t)));
}

TEST(Knn, TieBreaksTowardSmallerClass) {
  KnnClassifier knn(2);
  Matrix x{{0.0}, {1.0}};
  knn.fit(Dataset(std::move(x), {5, 2}));
  // Both neighbors vote once; smaller class id (2) wins.
  EXPECT_EQ(knn.predict(Matrix{{0.5}})[0], 2u);
}

}  // namespace
}  // namespace ssdk::nn
