#include "nn/scaler.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ssdk::nn {
namespace {

TEST(StandardScaler, TransformGivesZeroMeanUnitVariance) {
  Matrix x(100, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 5.0 + 0.1 * static_cast<double>(i % 10);
  }
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < 100; ++r) mean += z(r, c);
    mean /= 100.0;
    for (std::size_t r = 0; r < 100; ++r) {
      var += (z(r, c) - mean) * (z(r, c) - mean);
    }
    var /= 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-10);
    EXPECT_NEAR(var, 1.0, 1e-10);
  }
}

TEST(StandardScaler, ConstantColumnPassesThroughCentered) {
  Matrix x(5, 1, 3.0);
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  for (std::size_t r = 0; r < 5; ++r) EXPECT_EQ(z(r, 0), 0.0);
}

TEST(StandardScaler, TransformBeforeFitThrows) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(Matrix(1, 1)), std::logic_error);
}

TEST(StandardScaler, EmptyFitThrows) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.fit(Matrix(0, 3)), std::invalid_argument);
}

TEST(StandardScaler, TransformUsesTrainStatistics) {
  Matrix train{{0.0}, {10.0}};  // mean 5, std 5
  StandardScaler scaler;
  scaler.fit(train);
  const Matrix z = scaler.transform(Matrix{{15.0}});
  EXPECT_DOUBLE_EQ(z(0, 0), 2.0);
}

TEST(StandardScaler, SetParametersRoundTrip) {
  StandardScaler scaler;
  scaler.set_parameters({1.0, 2.0}, {3.0, 4.0});
  EXPECT_TRUE(scaler.fitted());
  const Matrix z = scaler.transform(Matrix{{4.0, 10.0}});
  EXPECT_DOUBLE_EQ(z(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(z(0, 1), 2.0);
  EXPECT_THROW(scaler.set_parameters({1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssdk::nn
