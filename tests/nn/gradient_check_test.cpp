// Numerical gradient check: backprop gradients of the full MLP (softmax +
// cross-entropy) must match central finite differences for every parameter
// of every layer and activation.
#include <gtest/gtest.h>

#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace ssdk::nn {
namespace {

double loss_of(Mlp& model, const Matrix& x,
               const std::vector<std::uint32_t>& y) {
  const Matrix& logits = model.forward(x);
  return softmax_cross_entropy(logits, y, nullptr);
}

class GradientCheck : public testing::TestWithParam<Activation> {};

TEST_P(GradientCheck, BackpropMatchesFiniteDifference) {
  const Activation act = GetParam();
  Mlp model({4, 6, 3}, act, /*seed=*/1234);

  Matrix x(5, 4);
  Rng rng(99);
  for (auto& v : x.raw()) v = rng.normal(0.0, 1.0);
  const std::vector<std::uint32_t> y{0, 2, 1, 1, 0};

  model.zero_grad();
  model.train_loss_and_grad(x, y);

  const double eps = 1e-6;
  for (std::size_t li = 0; li < model.num_layers(); ++li) {
    DenseLayer& layer = model.mutable_layer(li);
    // Check a sample of weight entries plus all biases.
    for (std::size_t i = 0; i < layer.weights().size(); i += 3) {
      const double saved = layer.mutable_weights().raw()[i];
      layer.mutable_weights().raw()[i] = saved + eps;
      const double up = loss_of(model, x, y);
      layer.mutable_weights().raw()[i] = saved - eps;
      const double down = loss_of(model, x, y);
      layer.mutable_weights().raw()[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      ASSERT_NEAR(numeric, layer.grad_weights().raw()[i], 1e-4)
          << "layer " << li << " weight " << i << " act "
          << to_string(act);
    }
    for (std::size_t i = 0; i < layer.bias().size(); ++i) {
      const double saved = layer.mutable_bias().raw()[i];
      layer.mutable_bias().raw()[i] = saved + eps;
      const double up = loss_of(model, x, y);
      layer.mutable_bias().raw()[i] = saved - eps;
      const double down = loss_of(model, x, y);
      layer.mutable_bias().raw()[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      ASSERT_NEAR(numeric, layer.grad_bias().raw()[i], 1e-4)
          << "layer " << li << " bias " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, GradientCheck,
                         testing::Values(Activation::kReLU,
                                         Activation::kLogistic,
                                         Activation::kTanh,
                                         Activation::kIdentity),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

TEST(GradientCheckDeep, ThreeHiddenLayers) {
  Mlp model({3, 5, 4, 4, 2}, Activation::kTanh, 777);
  Matrix x(2, 3);
  Rng rng(1);
  for (auto& v : x.raw()) v = rng.normal(0.0, 1.0);
  const std::vector<std::uint32_t> y{1, 0};

  model.zero_grad();
  model.train_loss_and_grad(x, y);

  const double eps = 1e-6;
  DenseLayer& first = model.mutable_layer(0);
  for (std::size_t i = 0; i < first.weights().size(); ++i) {
    const double saved = first.mutable_weights().raw()[i];
    first.mutable_weights().raw()[i] = saved + eps;
    const double up = loss_of(model, x, y);
    first.mutable_weights().raw()[i] = saved - eps;
    const double down = loss_of(model, x, y);
    first.mutable_weights().raw()[i] = saved;
    ASSERT_NEAR((up - down) / (2.0 * eps), first.grad_weights().raw()[i],
                1e-4);
  }
}

}  // namespace
}  // namespace ssdk::nn
