#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ssdk::nn {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  const Matrix logits(4, 3, 0.0);
  const std::vector<std::uint32_t> labels{0, 1, 2, 0};
  const double loss = softmax_cross_entropy(logits, labels, nullptr);
  EXPECT_NEAR(loss, std::log(3.0), 1e-12);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectIsNearZero) {
  Matrix logits(1, 2, 0.0);
  logits(0, 0) = 50.0;
  const std::vector<std::uint32_t> labels{0};
  EXPECT_LT(softmax_cross_entropy(logits, labels, nullptr), 1e-10);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  Matrix logits{{0.3, -0.2, 1.0}, {2.0, 0.0, -1.0}};
  const std::vector<std::uint32_t> labels{2, 0};
  Matrix grad;
  softmax_cross_entropy(logits, labels, &grad);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += grad(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  Matrix logits{{0.5, -1.0, 0.25}};
  const std::vector<std::uint32_t> labels{1};
  Matrix grad;
  const double base = softmax_cross_entropy(logits, labels, &grad);
  const double eps = 1e-6;
  for (std::size_t c = 0; c < 3; ++c) {
    Matrix bumped = logits;
    bumped(0, c) += eps;
    const double up = softmax_cross_entropy(bumped, labels, nullptr);
    EXPECT_NEAR((up - base) / eps, grad(0, c), 1e-5);
  }
}

TEST(SoftmaxCrossEntropy, NoNanWhenConfidentlyWrong) {
  Matrix logits(1, 2, 0.0);
  logits(0, 0) = 1000.0;
  const std::vector<std::uint32_t> labels{1};
  const double loss = softmax_cross_entropy(logits, labels, nullptr);
  EXPECT_FALSE(std::isnan(loss));
  EXPECT_GT(loss, 100.0);
}

TEST(MeanSquaredError, KnownValueAndGradient) {
  const Matrix pred{{1.0, 2.0}};
  const Matrix target{{0.0, 4.0}};
  Matrix grad;
  const double loss = mean_squared_error(pred, target, &grad);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(grad(0, 0), 1.0);   // 2*(1-0)/2
  EXPECT_DOUBLE_EQ(grad(0, 1), -2.0);  // 2*(2-4)/2
}

TEST(MeanSquaredError, ZeroWhenEqual) {
  const Matrix p{{3.0, 3.0}};
  EXPECT_DOUBLE_EQ(mean_squared_error(p, p, nullptr), 0.0);
}

}  // namespace
}  // namespace ssdk::nn
