#include "nn/cross_validation.hpp"

#include <gtest/gtest.h>

namespace ssdk::nn {
namespace {

Dataset blobs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 2);
  std::vector<std::uint32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cls = i % 2 == 0;
    x(i, 0) = rng.normal(cls ? 2.0 : -2.0, 0.6);
    x(i, 1) = rng.normal(cls ? -2.0 : 2.0, 0.6);
    y[i] = cls ? 1 : 0;
  }
  return Dataset(std::move(x), std::move(y));
}

CrossValidationOptions fast_options(std::size_t folds = 4) {
  CrossValidationOptions options;
  options.folds = folds;
  options.train.max_iterations = 20;
  return options;
}

TEST(CrossValidation, SeparableProblemScoresHighEveryFold) {
  const auto result = k_fold_cross_validate(
      blobs(200, 1), fast_options(),
      [] { return Mlp({2, 6, 2}, Activation::kReLU, 7); },
      [] { return make_optimizer("adam"); });
  ASSERT_EQ(result.fold_accuracy.size(), 4u);
  for (const double a : result.fold_accuracy) EXPECT_GT(a, 0.9);
  EXPECT_GT(result.mean_accuracy, 0.9);
  EXPECT_LT(result.stddev_accuracy, 0.1);
}

TEST(CrossValidation, MeanMatchesFolds) {
  const auto result = k_fold_cross_validate(
      blobs(120, 2), fast_options(3),
      [] { return Mlp({2, 4, 2}, Activation::kTanh, 3); },
      [] { return make_optimizer("sgd-momentum"); });
  double sum = 0.0;
  for (const double a : result.fold_accuracy) sum += a;
  EXPECT_NEAR(result.mean_accuracy, sum / 3.0, 1e-12);
}

TEST(CrossValidation, RejectsBadFoldCounts) {
  const auto model = [] { return Mlp({2, 4, 2}, Activation::kReLU, 1); };
  const auto opt = [] { return make_optimizer("adam"); };
  CrossValidationOptions one_fold;
  one_fold.folds = 1;
  EXPECT_THROW(k_fold_cross_validate(blobs(50, 3), one_fold, model, opt),
               std::invalid_argument);
  CrossValidationOptions many;
  many.folds = 100;
  EXPECT_THROW(k_fold_cross_validate(blobs(50, 3), many, model, opt),
               std::invalid_argument);
}

TEST(CrossValidation, DeterministicGivenSeed) {
  const auto data = blobs(100, 4);
  const auto run = [&] {
    return k_fold_cross_validate(
        data, fast_options(),
        [] { return Mlp({2, 4, 2}, Activation::kReLU, 11); },
        [] { return make_optimizer("adam"); });
  };
  const auto a = run();
  const auto b = run();
  for (std::size_t i = 0; i < a.fold_accuracy.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fold_accuracy[i], b.fold_accuracy[i]);
  }
}

TEST(WeightDecay, ShrinksWeights) {
  // Zero gradients + weight decay = pure shrinkage toward zero.
  std::vector<DenseLayer> layers;
  layers.emplace_back(Matrix{{10.0}}, Matrix{{5.0}}, Activation::kIdentity);
  Mlp model(std::move(layers));
  Sgd sgd(0.1);
  sgd.set_weight_decay(0.5);
  model.zero_grad();
  sgd.step(model);
  // grad_W = 0 + 0.5*10 = 5; W -= 0.1*5 -> 9.5. Bias exempt.
  EXPECT_DOUBLE_EQ(model.layer(0).weights()(0, 0), 9.5);
  EXPECT_DOUBLE_EQ(model.layer(0).bias()(0, 0), 5.0);
}

TEST(WeightDecay, RejectsNegative) {
  Sgd sgd(0.1);
  EXPECT_THROW(sgd.set_weight_decay(-1.0), std::invalid_argument);
  sgd.set_weight_decay(0.0);
  EXPECT_EQ(sgd.weight_decay(), 0.0);
}

TEST(WeightDecay, ReducesWeightNormDuringTraining) {
  const auto data = blobs(100, 5);
  StandardScaler scaler;
  Dataset scaled(scaler.fit_transform(data.features()),
                 std::vector<std::uint32_t>(data.labels()));
  auto run = [&](double decay) {
    Mlp model({2, 16, 2}, Activation::kReLU, 13);
    Adam adam(0.02);
    adam.set_weight_decay(decay);
    TrainOptions options;
    options.max_iterations = 40;
    train_classifier(model, adam, scaled, Dataset(), options);
    double norm = 0.0;
    for (std::size_t l = 0; l < model.num_layers(); ++l) {
      norm += frobenius_norm(model.layer(l).weights());
    }
    return norm;
  };
  EXPECT_LT(run(0.05), run(0.0));
}

}  // namespace
}  // namespace ssdk::nn
