#include "nn/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ssdk::nn {
namespace {

Dataset make_dataset(std::size_t n) {
  Matrix x(n, 2);
  std::vector<std::uint32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = static_cast<double>(i) * 10.0;
    y[i] = static_cast<std::uint32_t>(i % 3);
  }
  return Dataset(std::move(x), std::move(y));
}

TEST(Dataset, SizeMismatchThrows) {
  EXPECT_THROW(Dataset(Matrix(3, 2), std::vector<std::uint32_t>{1, 2}),
               std::invalid_argument);
}

TEST(Dataset, AddGrowsRows) {
  Dataset d;
  d.add({1.0, 2.0}, 0);
  d.add({3.0, 4.0}, 1);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.feature_dim(), 2u);
  EXPECT_EQ(d.features()(1, 1), 4.0);
  EXPECT_THROW(d.add({1.0}, 0), std::invalid_argument);
}

TEST(Dataset, NumClassesIsMaxPlusOne) {
  const Dataset d = make_dataset(7);
  EXPECT_EQ(d.num_classes(), 3u);
  EXPECT_EQ(Dataset().num_classes(), 0u);
}

TEST(Dataset, ShuffleKeepsRowLabelPairsTogether) {
  Dataset d = make_dataset(30);
  Rng rng(3);
  d.shuffle(rng);
  for (std::size_t i = 0; i < d.size(); ++i) {
    // Row content must still match its label: col0 % 3 == label.
    const auto v = static_cast<std::uint32_t>(d.features()(i, 0));
    EXPECT_EQ(v % 3, d.labels()[i]);
    EXPECT_EQ(d.features()(i, 1), d.features()(i, 0) * 10.0);
  }
}

TEST(Dataset, ShuffleIsPermutation) {
  Dataset d = make_dataset(20);
  Rng rng(5);
  d.shuffle(rng);
  std::set<double> firsts;
  for (std::size_t i = 0; i < d.size(); ++i) {
    firsts.insert(d.features()(i, 0));
  }
  EXPECT_EQ(firsts.size(), 20u);
}

TEST(Dataset, SplitFractions) {
  const Dataset d = make_dataset(10);
  const auto [train, test] = d.split(0.7);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  EXPECT_EQ(train.features()(0, 0), 0.0);
  EXPECT_EQ(test.features()(0, 0), 7.0);
}

TEST(Dataset, SplitExtremes) {
  const Dataset d = make_dataset(5);
  const auto [all, none] = d.split(1.0);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(none.empty());
}

TEST(Dataset, BatchCopiesRange) {
  const Dataset d = make_dataset(10);
  const auto [x, y] = d.batch(2, 5);
  EXPECT_EQ(x.rows(), 3u);
  EXPECT_EQ(y.size(), 3u);
  EXPECT_EQ(x(0, 0), 2.0);
  EXPECT_EQ(y[2], 4u % 3);
}

}  // namespace
}  // namespace ssdk::nn
