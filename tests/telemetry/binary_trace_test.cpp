#include "telemetry/binary_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ssdk::telemetry {
namespace {

std::vector<TraceEvent> sample_events() {
  std::vector<TraceEvent> events;
  TraceEvent e;
  e.begin = 1'000;
  e.end = 41'160;
  e.request_id = 7;
  e.detail = 0xdeadbeefcafe;
  e.channel = 3;
  e.unit = 25;
  e.tenant = 2;
  e.kind = SpanKind::kFlashRead;
  e.op = OpClass::kHostRead;
  events.push_back(e);
  e.kind = SpanKind::kRequest;
  e.op = OpClass::kHostWrite;
  e.request_id = kNoRequestId;
  e.channel = kNoResource;
  events.push_back(e);
  return events;
}

TEST(BinaryTrace, RoundTripsEventsAndDropCount) {
  const auto events = sample_events();
  std::stringstream ss;
  write_binary_trace(ss, events, /*dropped=*/17);
  const BinaryTrace back = read_binary_trace(ss);
  EXPECT_EQ(back.dropped, 17u);
  ASSERT_EQ(back.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back.events[i], events[i]) << "event " << i;
  }
}

TEST(BinaryTrace, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_binary_trace(ss, {}, 0);
  const BinaryTrace back = read_binary_trace(ss);
  EXPECT_TRUE(back.events.empty());
  EXPECT_EQ(back.dropped, 0u);
}

TEST(BinaryTrace, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTATRACEFILE AT ALL, JUST 32+ BYTES OF TEXT";
  EXPECT_THROW(read_binary_trace(ss), std::runtime_error);
}

TEST(BinaryTrace, RejectsTruncatedBody) {
  std::stringstream ss;
  write_binary_trace(ss, sample_events(), 0);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() - 10);  // chop mid-record
  std::stringstream cut(bytes);
  EXPECT_THROW(read_binary_trace(cut), std::runtime_error);
}

TEST(BinaryTrace, RejectsTruncatedHeader) {
  std::stringstream ss;
  ss << "SSDK";
  EXPECT_THROW(read_binary_trace(ss), std::runtime_error);
}

TEST(BinaryTrace, FileRoundTrip) {
  Tracer tracer;
  for (const auto& e : sample_events()) tracer.record(e);
  const std::string path = testing::TempDir() + "/ssdk_trace_test.ssdktrc";
  write_binary_trace_file(path, tracer);
  const BinaryTrace back = read_binary_trace_file(path);
  EXPECT_EQ(back.events, tracer.events());
  std::remove(path.c_str());
  EXPECT_THROW(read_binary_trace_file("/no/such/file.ssdktrc"),
               std::runtime_error);
}

TEST(FirstDivergence, IdenticalAndDiffering) {
  const auto a = sample_events();
  auto b = a;
  EXPECT_EQ(first_divergence(a, b), kNoDivergence);
  b[1].end += 1;
  EXPECT_EQ(first_divergence(a, b), 1u);
  b = a;
  b.pop_back();
  EXPECT_EQ(first_divergence(a, b), 1u);  // common prefix, shorter length
  EXPECT_EQ(first_divergence({}, {}), kNoDivergence);
}

}  // namespace
}  // namespace ssdk::telemetry
