#include "telemetry/tracer.hpp"

#include <gtest/gtest.h>

namespace ssdk::telemetry {
namespace {

TraceEvent event_at(SimTime begin, Duration len = 100) {
  TraceEvent e;
  e.begin = begin;
  e.end = begin + len;
  e.kind = SpanKind::kBusTransfer;
  e.channel = 2;
  return e;
}

TEST(Tracer, RecordsInOrder) {
  Tracer tracer;
  tracer.record(event_at(10));
  tracer.record(event_at(20));
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].begin, 10u);
  EXPECT_EQ(events[1].begin, 20u);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, OverwriteOldestKeepsTail) {
  TelemetryConfig config;
  config.capacity_events = 4;
  config.overwrite_oldest = true;
  Tracer tracer(config);
  for (SimTime t = 0; t < 10; ++t) tracer.record(event_at(t * 100));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // The last four recorded events survive, oldest first.
  EXPECT_EQ(events[0].begin, 600u);
  EXPECT_EQ(events[3].begin, 900u);
}

TEST(Tracer, DropNewKeepsHead) {
  TelemetryConfig config;
  config.capacity_events = 3;
  config.overwrite_oldest = false;
  Tracer tracer(config);
  for (SimTime t = 0; t < 8; ++t) tracer.record(event_at(t * 100));
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 5u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].begin, 0u);
  EXPECT_EQ(events[2].begin, 200u);
}

TEST(Tracer, RecordPointIsZeroLength) {
  Tracer tracer;
  tracer.record_point(500, SpanKind::kGcVictim, sim::kInternalTenant, 1, 9,
                      42);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].begin, 500u);
  EXPECT_EQ(events[0].end, 500u);
  EXPECT_EQ(events[0].kind, SpanKind::kGcVictim);
  EXPECT_EQ(events[0].channel, 1u);
  EXPECT_EQ(events[0].unit, 9u);
  EXPECT_EQ(events[0].detail, 42u);
}

TEST(Tracer, DecisionsStoredAndMirroredAsEvents) {
  Tracer tracer;
  KeeperDecision d;
  d.time = 1000;
  d.strategy = "4:2:1:1";
  d.features = "w=0.7";
  d.changed = true;
  tracer.record_decision(d);
  ASSERT_EQ(tracer.decisions().size(), 1u);
  EXPECT_EQ(tracer.decisions()[0].strategy, "4:2:1:1");
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, SpanKind::kKeeperDecision);
  EXPECT_EQ(events[0].detail, 0u);  // index into decisions()
}

TEST(Tracer, ClearResetsEverything) {
  Tracer tracer;
  tracer.record(event_at(1));
  tracer.record_decision(KeeperDecision{});
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_TRUE(tracer.decisions().empty());
}

TEST(SpanNames, AllKindsNamed) {
  for (int k = 0; k <= static_cast<int>(SpanKind::kKeeperDecision); ++k) {
    const char* name = span_kind_name(static_cast<SpanKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
  }
  EXPECT_STREQ(op_class_name(OpClass::kHostRead), "host_read");
}

}  // namespace
}  // namespace ssdk::telemetry
