#include "telemetry/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>

namespace ssdk::telemetry {
namespace {

// Minimal recursive-descent JSON validator: enough to guarantee the export
// is syntactically well-formed (what chrome://tracing / Perfetto requires
// before any semantic interpretation).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

Tracer traced_sample() {
  Tracer tracer;
  TraceEvent bus;
  bus.begin = 1000;
  bus.end = 21'000;
  bus.kind = SpanKind::kBusTransfer;
  bus.op = OpClass::kHostRead;
  bus.channel = 2;
  bus.tenant = 1;
  bus.request_id = 5;
  tracer.record(bus);
  TraceEvent flash;
  flash.begin = 21'000;
  flash.end = 62'160;
  flash.kind = SpanKind::kFlashRead;
  flash.op = OpClass::kHostRead;
  flash.channel = 2;
  flash.unit = 17;
  flash.tenant = 1;
  tracer.record(flash);
  TraceEvent req;
  req.begin = 0;
  req.end = 70'000;
  req.kind = SpanKind::kRequest;
  req.op = OpClass::kHostRead;
  req.tenant = 1;
  req.request_id = 5;
  tracer.record(req);
  tracer.record_point(30'000, SpanKind::kGcVictim, sim::kInternalTenant, 0,
                      3, 12);
  KeeperDecision d;
  d.time = 50'000;
  d.strategy = "4:2:1:1";
  d.features = "props=[0.4,\"quoted\"]\nnewline";
  d.changed = true;
  tracer.record_decision(d);
  return tracer;
}

TEST(ChromeTrace, OutputIsWellFormedJson) {
  std::ostringstream os;
  write_chrome_trace(os, traced_sample());
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST(ChromeTrace, EmptyTraceIsWellFormedJson) {
  std::ostringstream os;
  write_chrome_trace(os, Tracer{});
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST(ChromeTrace, TracksAndSpansPresent) {
  std::ostringstream os;
  write_chrome_trace(os, traced_sample());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"channel buses\""), std::string::npos);
  EXPECT_NE(json.find("\"flash units\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant 1\""), std::string::npos);
  EXPECT_NE(json.find("\"keeper\""), std::string::npos);
  EXPECT_NE(json.find("\"bus_transfer\""), std::string::npos);
  EXPECT_NE(json.find("\"flash_read\""), std::string::npos);
  // Timestamps are microseconds: 21000ns -> 21.000us.
  EXPECT_NE(json.find("\"ts\":21.000"), std::string::npos);
  // Request spans become async begin/end pairs.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  // Keeper decision carries strategy + features (escaped).
  EXPECT_NE(json.find("strategy 4:2:1:1"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\nnewline"), std::string::npos);
}

TEST(JsonEscape, ControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

}  // namespace
}  // namespace ssdk::telemetry
