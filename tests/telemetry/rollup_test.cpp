#include "telemetry/rollup.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "ssd/ssd.hpp"
#include "util/csv.hpp"

namespace ssdk::telemetry {
namespace {

TraceEvent request(SimTime begin, SimTime end, sim::TenantId tenant,
                   OpClass op) {
  TraceEvent e;
  e.begin = begin;
  e.end = end;
  e.tenant = tenant;
  e.kind = SpanKind::kRequest;
  e.op = op;
  return e;
}

TraceEvent wait(SimTime begin, SimTime end, sim::TenantId tenant) {
  TraceEvent e;
  e.begin = begin;
  e.end = end;
  e.tenant = tenant;
  e.kind = SpanKind::kQueueWait;
  return e;
}

TraceEvent bus(SimTime begin, SimTime end, std::uint32_t channel) {
  TraceEvent e;
  e.begin = begin;
  e.end = end;
  e.channel = channel;
  e.kind = SpanKind::kBusTransfer;
  return e;
}

TEST(Rollup, BucketsByCompletionWindowAndTenant) {
  RollupConfig config;
  config.window_ns = 1000;
  config.channels = 1;
  const std::vector<TraceEvent> events{
      request(0, 100, 0, OpClass::kHostRead),
      request(50, 150, 0, OpClass::kHostRead),
      request(0, 500, 1, OpClass::kHostWrite),
      // Completes in window 1 even though it started in window 0.
      request(900, 1100, 0, OpClass::kHostWrite),
  };
  const auto rows = build_rollup(events, config);
  ASSERT_EQ(rows.size(), 3u);
  // std::map ordering: (win 0, t0), (win 0, t1), (win 1, t0).
  EXPECT_EQ(rows[0].window_start, 0u);
  EXPECT_EQ(rows[0].tenant, 0u);
  EXPECT_EQ(rows[0].reads, 2u);
  EXPECT_EQ(rows[0].writes, 0u);
  EXPECT_DOUBLE_EQ(rows[0].read_mean_us, 0.1);  // (100+100)/2 ns = 0.1 us
  EXPECT_EQ(rows[1].tenant, 1u);
  EXPECT_EQ(rows[1].writes, 1u);
  EXPECT_EQ(rows[2].window_start, 1000u);
  EXPECT_EQ(rows[2].writes, 1u);
  // IOPS: 2 requests completed in a 1us window = 2e6 per second.
  EXPECT_DOUBLE_EQ(rows[0].iops, 2e6);
}

TEST(Rollup, TrimRequestsExcluded) {
  RollupConfig config;
  config.window_ns = 1000;
  const std::vector<TraceEvent> events{
      request(0, 10, 0, OpClass::kHostTrim)};
  EXPECT_TRUE(build_rollup(events, config).empty());
}

TEST(Rollup, ConflictsAndWaitAccumulate) {
  RollupConfig config;
  config.window_ns = 1000;
  const std::vector<TraceEvent> events{
      request(0, 100, 0, OpClass::kHostRead),
      wait(0, 300, 0),
      wait(400, 500, 0),
  };
  const auto rows = build_rollup(events, config);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].conflicts, 2u);
  EXPECT_EQ(rows[0].wait_ns, 400u);
}

TEST(Rollup, BusUtilClippedAcrossWindowEdge) {
  RollupConfig config;
  config.window_ns = 1000;
  config.channels = 2;
  // 600ns in window 0 and 400ns in window 1, device has 2 channels.
  const std::vector<TraceEvent> events{
      bus(400, 1400, 0),
      // A tenant row is needed for each window to carry the value.
      request(0, 100, 0, OpClass::kHostRead),
      request(1000, 1100, 0, OpClass::kHostRead),
  };
  const auto rows = build_rollup(events, config);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].bus_util, 600.0 / 2000.0);
  EXPECT_DOUBLE_EQ(rows[1].bus_util, 400.0 / 2000.0);
}

TEST(Rollup, ZeroLengthBusTransferIgnored) {
  RollupConfig config;
  config.window_ns = 1000;
  const std::vector<TraceEvent> events{
      bus(0, 0, 0), request(0, 100, 0, OpClass::kHostRead)};
  const auto rows = build_rollup(events, config);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].bus_util, 0.0);
}

TEST(Rollup, RejectsZeroWindow) {
  RollupConfig config;
  config.window_ns = 0;
  EXPECT_THROW(build_rollup({}, config), std::invalid_argument);
}

TEST(RollupSummary, AggregatesAcrossWindowsAndTenants) {
  RollupConfig config;
  config.window_ns = 1000;
  config.channels = 1;
  const std::vector<TraceEvent> events{
      // Window 0: tenant 0 reads (100 us each), bus 50% busy.
      request(0, 100, 0, OpClass::kHostRead),
      request(0, 100, 0, OpClass::kHostRead),
      bus(0, 500, 0),
      // Window 1: tenant 1 writes, bus fully busy — the peak window.
      request(1000, 1300, 1, OpClass::kHostWrite),
      bus(1000, 2000, 0),
  };
  const auto rows = build_rollup(events, config);
  const RollupSummary s = summarize_rollup(rows);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_NEAR(s.read_p99_us, 0.1, 1e-9);   // all reads took 100 ns
  EXPECT_NEAR(s.write_p99_us, 0.3, 1e-9);  // the write took 300 ns
  EXPECT_NEAR(s.peak_bus_util, 1.0, 1e-9);
  // Window 0 carries weight 2 at util 0.5, window 1 weight 1 at util 1.0.
  EXPECT_NEAR(s.mean_bus_util, (2.0 * 0.5 + 1.0 * 1.0) / 3.0, 1e-9);
  // 2 requests in window 0 + 1 in window 1, each window 1 us long, so
  // the per-window rates are 2e6 and 1e6 requests/s.
  EXPECT_NEAR(s.iops, (2e6 + 1e6) / 2.0, 1.0);
  EXPECT_GT(s.heat(), 0.0);
}

TEST(RollupSummary, EmptyRollupIsAllZero) {
  const RollupSummary s = summarize_rollup({});
  EXPECT_EQ(s.reads, 0u);
  EXPECT_EQ(s.writes, 0u);
  EXPECT_EQ(s.iops, 0.0);
  EXPECT_EQ(s.heat(), 0.0);
  EXPECT_EQ(s.mean_bus_util, 0.0);
}

TEST(RollupCsv, HeaderAndRowsParseBack) {
  RollupConfig config;
  config.window_ns = 1000 * kMicrosecond;
  std::vector<TraceEvent> events{
      request(0, 50 * kMicrosecond, 3, OpClass::kHostWrite)};
  const auto rows = build_rollup(events, config);
  std::ostringstream os;
  write_rollup_csv(os, rows);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(split_csv_line(line).size(), 15u);
  EXPECT_EQ(line.substr(0, 15), "window_start_us");
  std::getline(is, line);
  const auto fields = split_csv_line(line);
  ASSERT_EQ(fields.size(), 15u);
  EXPECT_EQ(parse_u64(fields[1]), 3u);          // tenant
  EXPECT_EQ(parse_u64(fields[3]), 1u);          // writes
  EXPECT_DOUBLE_EQ(parse_double(fields[6]), 50.0);  // write_mean_us
  EXPECT_EQ(parse_u64(fields[12]), 0u);         // volatile_lost
  EXPECT_EQ(parse_u64(fields[13]), 0u);         // sched_waits
  EXPECT_DOUBLE_EQ(parse_double(fields[14]), 0.0);  // sched_wait_us
}

TEST(Rollup, VolatileLossBucketsByCutTimeAndTenant) {
  RollupConfig config;
  config.window_ns = 1000;
  const auto loss = [](SimTime at, sim::TenantId tenant,
                       std::uint64_t pages) {
    TraceEvent e;
    e.begin = at;
    e.end = at;
    e.tenant = tenant;
    e.kind = SpanKind::kVolatileLoss;
    e.detail = pages;
    return e;
  };
  const std::vector<TraceEvent> events{
      loss(100, 0, 3),
      loss(100, 1, 2),
      // A second cut in window 1 hits tenant 0 again.
      loss(1500, 0, 4),
  };
  const auto rows = build_rollup(events, config);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].tenant, 0u);
  EXPECT_EQ(rows[0].volatile_lost, 3u);
  EXPECT_EQ(rows[1].tenant, 1u);
  EXPECT_EQ(rows[1].volatile_lost, 2u);
  EXPECT_EQ(rows[2].window_start, 1000u);
  EXPECT_EQ(rows[2].volatile_lost, 4u);
}

TEST(Rollup, VolatileLossReconcilesWithDeviceMetrics) {
  // A traced run with a power cut while the write buffer is dirty: the
  // rollup's per-tenant volatile_lost totals must equal the device's
  // acked_volatile_lost counters — the same loss, observed through two
  // independent paths (trace points vs. metrics).
  ssd::SsdOptions options;
  options.geometry = sim::Geometry::tiny();
  options.power.enabled = true;
  options.power.cut_at_arrival = 40;
  options.power.auto_recover = true;
  options.write_buffer.capacity_pages = 8;

  Tracer tracer;
  ssd::Ssd device(options);
  device.set_tracer(&tracer);
  std::vector<sim::IoRequest> reqs;
  for (std::uint64_t i = 0; i < 64; ++i) {
    sim::IoRequest r;
    r.id = i;
    r.tenant = static_cast<sim::TenantId>(i % 2);
    r.type = sim::OpType::kWrite;
    r.lpn = i % 24;
    r.page_count = 1;
    r.arrival = 2000 * i;
    reqs.push_back(r);
  }
  device.submit(reqs);
  device.run_to_completion();

  std::map<sim::TenantId, std::uint64_t> device_lost;
  std::uint64_t device_total = 0;
  for (sim::TenantId t = 0; t < 2; ++t) {
    device_lost[t] = device.metrics().tenant(t).acked_volatile_lost;
    device_total += device_lost[t];
  }
  ASSERT_GT(device_total, 0u) << "cut never caught a dirty buffer";

  RollupConfig config;
  config.window_ns = 1000 * kMicrosecond;
  std::map<sim::TenantId, std::uint64_t> rollup_lost;
  for (const auto& row : build_rollup(tracer.events(), config)) {
    rollup_lost[row.tenant] += row.volatile_lost;
  }
  for (sim::TenantId t = 0; t < 2; ++t) {
    EXPECT_EQ(rollup_lost[t], device_lost[t]) << "tenant " << t;
  }
}

}  // namespace
}  // namespace ssdk::telemetry
