#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ssdk::util {
namespace {

TEST(Check, CheckMsgPassesQuietly) {
  EXPECT_NO_THROW(SSDK_CHECK_MSG(1 + 1 == 2, "arithmetic"));
}

TEST(Check, CheckMsgThrowsWithLocationAndMessage) {
  try {
    SSDK_CHECK_MSG(2 + 2 == 5, "the counter drifted");
    FAIL() << "SSDK_CHECK_MSG did not throw";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("the counter drifted"), std::string::npos) << what;
  }
}

TEST(Check, InvariantViolationIsLogicError) {
  // Campaign drivers catch std::logic_error; the violation must be one.
  EXPECT_THROW(SSDK_CHECK_MSG(false, "x"), std::logic_error);
}

TEST(Check, AssertEvaluatesConditionOnlyInCheckedBuilds) {
  // The off-state must not evaluate its argument (zero cost on the hot
  // path); the on-state must. kCheckedBuild tells us which build this is,
  // so one test validates both configurations.
  int evaluations = 0;
  auto touch = [&]() {
    ++evaluations;
    return true;
  };
  SSDK_ASSERT(touch());
  EXPECT_EQ(evaluations, kCheckedBuild ? 1 : 0);
}

TEST(Check, AssertThrowsOnlyInCheckedBuilds) {
  if (kCheckedBuild) {
    EXPECT_THROW(SSDK_ASSERT(false), InvariantViolation);
    EXPECT_THROW(SSDK_ASSERT_MSG(false, "armed"), InvariantViolation);
  } else {
    EXPECT_NO_THROW(SSDK_ASSERT(false));
    EXPECT_NO_THROW(SSDK_ASSERT_MSG(false, "disarmed"));
  }
}

}  // namespace
}  // namespace ssdk::util
