#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ssdk {
namespace {

TEST(SplitCsvLine, BasicFields) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitCsvLine, EmptyFieldsPreserved) {
  const auto f = split_csv_line(",x,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[2], "");
}

TEST(SplitCsvLine, TrimsCarriageReturn) {
  const auto f = split_csv_line("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

TEST(SplitCsvLine, CustomSeparator) {
  const auto f = split_csv_line("1|2|3", '|');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[2], "3");
}

TEST(ParseNumbers, ValidValues) {
  EXPECT_EQ(parse_i64("-42"), -42);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~std::uint64_t{0});
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
}

TEST(ParseNumbers, RejectsGarbage) {
  EXPECT_THROW(parse_i64("12x"), std::invalid_argument);
  EXPECT_THROW(parse_u64(""), std::invalid_argument);
  EXPECT_THROW(parse_u64("-1"), std::invalid_argument);
  EXPECT_THROW(parse_double("abc"), std::invalid_argument);
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b"});
  w.write_row({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(CsvWriter, RejectsSeparatorInField) {
  std::ostringstream os;
  CsvWriter w(os);
  EXPECT_THROW(w.write_row({"a,b"}), std::invalid_argument);
  EXPECT_THROW(w.write_row({"a\nb"}), std::invalid_argument);
}

}  // namespace
}  // namespace ssdk
