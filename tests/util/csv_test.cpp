#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ssdk {
namespace {

TEST(SplitCsvLine, BasicFields) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitCsvLine, EmptyFieldsPreserved) {
  const auto f = split_csv_line(",x,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[2], "");
}

TEST(SplitCsvLine, TrimsCarriageReturn) {
  const auto f = split_csv_line("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

TEST(SplitCsvLine, CustomSeparator) {
  const auto f = split_csv_line("1|2|3", '|');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[2], "3");
}

TEST(ParseNumbers, ValidValues) {
  EXPECT_EQ(parse_i64("-42"), -42);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~std::uint64_t{0});
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
}

TEST(ParseNumbers, RejectsGarbage) {
  EXPECT_THROW(parse_i64("12x"), std::invalid_argument);
  EXPECT_THROW(parse_u64(""), std::invalid_argument);
  EXPECT_THROW(parse_u64("-1"), std::invalid_argument);
  EXPECT_THROW(parse_double("abc"), std::invalid_argument);
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b"});
  w.write_row({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(CsvWriter, QuotesSeparatorAndNewline) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a,b", "plain"});
  w.write_row({"line\nbreak", "quote\"inside"});
  EXPECT_EQ(os.str(),
            "\"a,b\",plain\n"
            "\"line\nbreak\",\"quote\"\"inside\"\n");
}

TEST(SplitCsvLine, ParsesQuotedFields) {
  const auto f = split_csv_line("\"a,b\",plain,\"he said \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "plain");
  EXPECT_EQ(f[2], "he said \"hi\"");
}

TEST(SplitCsvLine, LoneQuoteMidFieldKeptLiterally) {
  // MSR traces are unquoted; a stray quote must not change field counts.
  const auto f = split_csv_line("ab\"cd,x");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "ab\"cd");
  EXPECT_EQ(f[1], "x");
}

TEST(CsvRoundTrip, WriterOutputParsesBack) {
  const std::vector<std::string> fields{"",       "plain", "a,b",
                                       "q\"uote", "multi\nline",
                                       "strategy=\"Partition{1,2}\""};
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(fields);
  std::string line = os.str();
  // The embedded newline is part of the quoted field, not a row break;
  // strip only the terminating row newline before parsing back.
  ASSERT_FALSE(line.empty());
  line.pop_back();
  EXPECT_EQ(split_csv_line(line), fields);
}

}  // namespace
}  // namespace ssdk
