#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ssdk {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (const double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 25.0);
}

TEST(SampleSet, SingleSamplePercentiles) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 7.0);
}

TEST(SampleSet, MeanAndExtremes) {
  SampleSet s;
  for (const double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSet, AddAfterPercentileQuery) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(100.0);  // must re-sort internally
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleSet, MergeCombines) {
  SampleSet a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(SampleSet, SummaryStringMentionsCount) {
  SampleSet s;
  s.add(5.0);
  EXPECT_NE(summarize(s).find("n=1"), std::string::npos);
  SampleSet empty;
  EXPECT_NE(summarize(empty).find("n=0"), std::string::npos);
}

}  // namespace
}  // namespace ssdk
