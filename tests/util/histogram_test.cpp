#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace ssdk {
namespace {

TEST(LinearHistogram, BucketsAndOverflow) {
  LinearHistogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive -> overflow
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearHistogram, BucketLowerEdges) {
  LinearHistogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 18.0);
}

TEST(LogHistogram, TotalAndPercentileOrdering) {
  LogHistogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.add(i * 1000);
  EXPECT_EQ(h.total(), 1000u);
  const auto p50 = h.percentile(50.0);
  const auto p99 = h.percentile(99.0);
  EXPECT_LE(p50, p99);
  // Bucketed values are approximate; generous bounds.
  EXPECT_GT(p50, 100'000u);
  EXPECT_LT(p50, 1'200'000u);
}

TEST(LogHistogram, ZeroSample) {
  LogHistogram h;
  h.add(0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.percentile(50.0), 0u);
}

TEST(LogHistogram, EmptyPercentileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.percentile(99.0), 0u);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a, b;
  a.add(100);
  b.add(100);
  b.add(1 << 20);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
}

TEST(LogHistogram, AsciiNonEmpty) {
  LogHistogram h;
  h.add(5000);
  const std::string art = h.ascii();
  EXPECT_NE(art.find('#'), std::string::npos);
  LogHistogram empty;
  EXPECT_NE(empty.ascii().find("empty"), std::string::npos);
}

TEST(LogHistogram, PercentileApproximatesValue) {
  LogHistogram h(16);
  for (int i = 0; i < 1000; ++i) h.add(1'000'000);  // ~2^20
  const auto p = h.percentile(50.0);
  EXPECT_GT(p, 900'000u);
  EXPECT_LT(p, 1'200'000u);
}

}  // namespace
}  // namespace ssdk
