#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace ssdk {
namespace {

TEST(LinearHistogram, BucketsAndOverflow) {
  LinearHistogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive -> overflow
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearHistogram, BucketLowerEdges) {
  LinearHistogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 18.0);
}

TEST(LogHistogram, TotalAndPercentileOrdering) {
  LogHistogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.add(i * 1000);
  EXPECT_EQ(h.total(), 1000u);
  const auto p50 = h.percentile(50.0);
  const auto p99 = h.percentile(99.0);
  EXPECT_LE(p50, p99);
  // Bucketed values are approximate; generous bounds.
  EXPECT_GT(p50, 100'000u);
  EXPECT_LT(p50, 1'200'000u);
}

TEST(LogHistogram, ZeroSample) {
  LogHistogram h;
  h.add(0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.percentile(50.0), 0u);
}

TEST(LogHistogram, EmptyPercentileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.percentile(99.0), 0u);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(100.0), 0u);
}

TEST(LogHistogram, SingleSampleEveryPercentile) {
  // Rollup windows frequently hold one request; every percentile must land
  // in that sample's bucket, not zero or the bucket ceiling.
  LogHistogram h;
  h.add(4096);
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    const auto v = h.percentile(p);
    EXPECT_GE(v, 2048u) << "p" << p;
    EXPECT_LE(v, 8192u) << "p" << p;
  }
}

TEST(LogHistogram, AllEqualSamplesPercentilesAgree) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(50'000);
  const auto p1 = h.percentile(1.0);
  const auto p50 = h.percentile(50.0);
  const auto p99 = h.percentile(99.0);
  EXPECT_EQ(p1, p50);
  EXPECT_EQ(p50, p99);
  EXPECT_GT(p99, 25'000u);
  EXPECT_LT(p99, 100'000u);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a, b;
  a.add(100);
  b.add(100);
  b.add(1 << 20);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
}

TEST(LogHistogram, AsciiNonEmpty) {
  LogHistogram h;
  h.add(5000);
  const std::string art = h.ascii();
  EXPECT_NE(art.find('#'), std::string::npos);
  LogHistogram empty;
  EXPECT_NE(empty.ascii().find("empty"), std::string::npos);
}

TEST(LogHistogram, PercentileApproximatesValue) {
  LogHistogram h(16);
  for (int i = 0; i < 1000; ++i) h.add(1'000'000);  // ~2^20
  const auto p = h.percentile(50.0);
  EXPECT_GT(p, 900'000u);
  EXPECT_LT(p, 1'200'000u);
}

}  // namespace
}  // namespace ssdk
