#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ssdk {
namespace {

TEST(Config, FromArgsParsesPairs) {
  const char* argv[] = {"prog", "alpha=1", "name=test", "rate=2.5"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_int("alpha", 0), 1);
  EXPECT_EQ(cfg.get_string("name", ""), "test");
  EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0.0), 2.5);
}

TEST(Config, FromArgsRejectsBareToken) {
  const char* argv[] = {"prog", "notapair"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
}

TEST(Config, FallbacksWhenAbsent) {
  const Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_EQ(cfg.get_uint("missing", 8u), 8u);
  EXPECT_EQ(cfg.get_string("missing", "d"), "d");
  EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(Config, BoolParsing) {
  Config cfg;
  cfg.set("a", "true");
  cfg.set("b", "0");
  cfg.set("c", "ON");
  cfg.set("d", "maybe");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_THROW(cfg.get_bool("d", false), std::invalid_argument);
}

TEST(Config, MalformedNumberThrows) {
  Config cfg;
  cfg.set("n", "12abc");
  EXPECT_THROW(cfg.get_int("n", 0), std::invalid_argument);
}

TEST(Config, FromFileParsesAndIgnoresComments) {
  const std::string path = testing::TempDir() + "/ssdk_config_test.cfg";
  {
    std::ofstream out(path);
    out << "# a comment\n"
        << "threads = 4\n"
        << "\n"
        << "name= hello # trailing comment\n";
  }
  const Config cfg = Config::from_file(path);
  EXPECT_EQ(cfg.get_int("threads", 0), 4);
  EXPECT_EQ(cfg.get_string("name", ""), "hello");
  std::remove(path.c_str());
}

TEST(Config, FromFileMissingThrows) {
  EXPECT_THROW(Config::from_file("/nonexistent/path.cfg"),
               std::runtime_error);
}

TEST(Config, KeysSorted) {
  Config cfg;
  cfg.set("b", "1");
  cfg.set("a", "2");
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace ssdk
