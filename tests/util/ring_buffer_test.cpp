#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>

#include "util/rng.hpp"

namespace ssdk::util {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 0u);
}

TEST(RingBufferTest, FifoOrder) {
  RingBuffer<int> rb;
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, WrapsAroundWithoutGrowing) {
  RingBuffer<int> rb;
  rb.reserve(8);
  const std::size_t cap = rb.capacity();
  // Push/pop far more elements than the capacity; occupancy never exceeds
  // 4 so the buffer must wrap in place rather than regrow.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) rb.push_back(next_in++);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(rb.front(), next_out++);
      rb.pop_front();
    }
  }
  EXPECT_EQ(rb.capacity(), cap);
}

TEST(RingBufferTest, GrowPreservesFifoOrderMidWrap) {
  RingBuffer<int> rb;
  rb.reserve(8);
  // Advance head past the midpoint, then fill to force a regrow while the
  // live region straddles the wrap point.
  for (int i = 0; i < 6; ++i) rb.push_back(i);
  for (int i = 0; i < 6; ++i) rb.pop_front();
  for (int i = 0; i < 20; ++i) rb.push_back(100 + i);
  EXPECT_GT(rb.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rb.front(), 100 + i);
    rb.pop_front();
  }
}

TEST(RingBufferTest, ReserveRoundsUpToPowerOfTwo) {
  RingBuffer<int> rb;
  rb.reserve(100);
  EXPECT_EQ(rb.capacity(), 128u);
  rb.reserve(5);  // never shrinks
  EXPECT_EQ(rb.capacity(), 128u);
}

TEST(RingBufferTest, ClearKeepsCapacity) {
  RingBuffer<int> rb;
  for (int i = 0; i < 10; ++i) rb.push_back(i);
  const std::size_t cap = rb.capacity();
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), cap);
  rb.push_back(42);
  EXPECT_EQ(rb.front(), 42);
}

TEST(RingBufferTest, MatchesDequeUnderRandomOps) {
  RingBuffer<std::uint64_t> rb;
  std::deque<std::uint64_t> ref;
  Rng rng(12345);
  for (int step = 0; step < 20'000; ++step) {
    const bool push = ref.empty() || rng.next_double() < 0.55;
    if (push) {
      const auto v = rng.next_u64();
      rb.push_back(v);
      ref.push_back(v);
    } else {
      ASSERT_EQ(rb.front(), ref.front());
      rb.pop_front();
      ref.pop_front();
    }
    ASSERT_EQ(rb.size(), ref.size());
  }
  while (!ref.empty()) {
    ASSERT_EQ(rb.front(), ref.front());
    rb.pop_front();
    ref.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

}  // namespace
}  // namespace ssdk::util
