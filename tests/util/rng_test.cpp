#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace ssdk {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 3000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyNearP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // Child stream should differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<std::size_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, StateRoundTripResumesStream) {
  Rng rng(1234);
  for (int i = 0; i < 57; ++i) rng.next_u64();  // mid-stream position
  const auto saved = rng.state();

  // The continued stream and a restored copy agree draw for draw.
  Rng restored(1);
  restored.set_state(saved);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(rng.next_u64(), restored.next_u64()) << "draw " << i;
  }

  // And restoring again rewinds: same state -> same stream.
  Rng rewound(2);
  rewound.set_state(saved);
  Rng again(3);
  again.set_state(saved);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(rewound.next_u64(), again.next_u64());
  }
}

TEST(Rng, SetStateRejectsAllZeroState) {
  // xoshiro256** is stuck at zero forever from the all-zero state; setting
  // it must fall back to a seeded state instead of wedging the stream.
  Rng rng(5);
  rng.set_state({0, 0, 0, 0});
  bool nonzero = false;
  for (int i = 0; i < 8 && !nonzero; ++i) nonzero = rng.next_u64() != 0;
  EXPECT_TRUE(nonzero);
}

TEST(Zipf, UniformWhenThetaZero) {
  Rng rng(41);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(Zipf, SkewConcentratesOnLowIndices) {
  Rng rng(43);
  ZipfGenerator zipf(1000, 0.9);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf(rng) < 10) ++low;
  }
  // Under theta=0.9, the top-10 of 1000 items draw far more than 1% mass.
  EXPECT_GT(static_cast<double>(low) / n, 0.2);
}

TEST(Zipf, AlwaysInRange) {
  Rng rng(47);
  ZipfGenerator zipf(17, 0.5);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(zipf(rng), 17u);
}

}  // namespace
}  // namespace ssdk
