#include "util/logger.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ssdk {
namespace {

class LoggerTest : public testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LoggerTest, LevelRoundTrips) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggerTest, StreamingInterfaceComposes) {
  // Captures stderr around a log emission.
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log_info() << "value=" << 42 << " name=" << "x";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("value=42 name=x"), std::string::npos);
}

TEST_F(LoggerTest, MessagesBelowThresholdDropped) {
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log_debug() << "hidden";
  log_warn() << "also hidden";
  log_error() << "visible";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST_F(LoggerTest, ThreadSafeUnderConcurrentEmission) {
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        log_info() << "thread " << t << " line " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::string out = testing::internal::GetCapturedStderr();
  // Every line intact: 200 INFO prefixes, 200 newlines.
  std::size_t count = 0;
  for (std::size_t pos = out.find("INFO"); pos != std::string::npos;
       pos = out.find("INFO", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 200u);
}

}  // namespace
}  // namespace ssdk
