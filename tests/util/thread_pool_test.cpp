#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ssdk {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrains) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, ChunkedCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; }, 16);
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t i) {
                     if (i == 13) throw std::invalid_argument("unlucky");
                   }),
      std::invalid_argument);
}

TEST(ParallelFor, ResultMatchesSequential) {
  ThreadPool pool(4);
  std::vector<double> out(500);
  parallel_for(pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(ParallelMap, MergesByIndexNotCompletionOrder) {
  ThreadPool pool(4);
  // Make early indices the slowest so completion order is roughly the
  // reverse of index order; the merged result must not care.
  const auto results = parallel_map(pool, std::size_t{64}, [](std::size_t i) {
    // std::atomic, not volatile: the point is only to defeat the
    // optimizer's loop elision, and relaxed atomic ops do that without
    // pretending volatile has threading semantics.
    std::atomic<std::uint64_t> spin{(64 - i) * 5000};
    while (spin.load(std::memory_order_relaxed) > 0) {
      spin.fetch_sub(1, std::memory_order_relaxed);
    }
    return i * i;
  });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i], i * i);
  }
}

TEST(ParallelMap, IdenticalAcrossThreadCounts) {
  std::vector<std::vector<std::uint64_t>> runs;
  for (const std::size_t threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads);
    runs.push_back(parallel_map(pool, std::size_t{200}, [](std::size_t i) {
      return i * 2654435761u + 17;
    }));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelMap, MoveOnlyResults) {
  ThreadPool pool(2);
  auto results =
      parallel_map(pool, std::size_t{10}, [](std::size_t i) {
        return std::make_unique<int>(static_cast<int>(i));
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_NE(results[i], nullptr);
    EXPECT_EQ(*results[i], static_cast<int>(i));
  }
}

TEST(ParallelMap, EmptyAndExceptions) {
  ThreadPool pool(2);
  EXPECT_TRUE(parallel_map(pool, 0, [](std::size_t i) { return i; }).empty());
  EXPECT_THROW(parallel_map(pool, std::size_t{32},
                            [](std::size_t i) -> int {
                              if (i == 7) throw std::invalid_argument("7");
                              return 0;
                            }),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssdk
