// Crash-consistency fuzzing harness (DESIGN.md §14).
//
// A "trunk" device replays a mixed 4-tenant workload (flush barriers, GC
// pressure, fault injection, volatile write buffer). At hundreds of cut
// points the harness forks the trunk, yanks power on the fork, recovers,
// and checks the durability contract from two independent angles:
//
//   * verify_recovery(): the rebuilt L2P map must equal an independent
//     recomputation of the OOB scan's winners — a bijection, so no torn or
//     stale page is ever served.
//   * an acked-durable oracle maintained host-side through the arrival and
//     completion hooks: every write acked durable (no buffered pages) whose
//     key was not disturbed by a newer in-flight write, trimmed, or lost on
//     media must still be mapped after recovery.
//
// The recovered fork then drains the rest of the workload and re-audits,
// proving post-crash service is structurally sound too. Separate pinned
// tests drive cuts into the two hardest windows: mid-GC-migration and
// mid-bad-block-rescue.
#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ftl/oob.hpp"
#include "ssd/ssd.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

namespace ssdk::ssd {
namespace {

sim::Geometry fuzz_geometry() {
  sim::Geometry g;
  g.channels = 4;
  g.chips_per_channel = 1;
  g.planes_per_chip = 2;
  g.blocks_per_plane = 64;
  g.pages_per_block = 16;
  return g;
}

/// Mixed 4-tenant workload: writes dominate two tenants, reads the other
/// two, every tenant issues flush barriers, and the footprint is small
/// enough that overwrites keep GC busy for the whole run.
std::vector<sim::IoRequest> fuzz_workload(std::uint64_t requests_each) {
  std::vector<trace::Workload> workloads;
  for (std::uint32_t t = 0; t < 4; ++t) {
    trace::SyntheticSpec spec;
    spec.write_fraction = t % 2 == 0 ? 0.85 : 0.25;
    spec.request_count = requests_each;
    spec.intensity_rps = 6000.0;
    spec.mean_request_pages = 2.0;
    spec.max_request_pages = 8;
    spec.address_space_pages = 700;
    spec.flush_fraction = 0.05;
    spec.zipf_theta = 0.3;
    spec.seed = 4200 + t;
    workloads.push_back(trace::generate_synthetic(spec));
  }
  return trace::mix_workloads(workloads);
}

SsdOptions fuzz_options() {
  SsdOptions options;
  options.geometry = fuzz_geometry();
  options.power.enabled = true;
  options.write_buffer.capacity_pages = 32;
  options.faults.read_ber = 1e-4;
  options.faults.program_fail = 1e-3;
  options.faults.erase_fail = 1e-3;
  return options;
}

/// Host-side durability ledger, maintained through the device hooks.
struct DurabilityOracle {
  struct KeyState {
    std::uint64_t ack = 0;      ///< seq of the last completed op on the key
    std::uint32_t inflight = 0;  ///< arrived-but-uncompleted writes/trims
    bool durable = false;        ///< last ack reached flash before the ack
  };

  std::unordered_map<std::uint64_t, KeyState> keys;
  /// Completions carry only the request id; remember each write/trim's
  /// page range from its arrival.
  std::unordered_map<std::uint64_t, sim::IoRequest> inflight_reqs;
  /// Volatile keys snapshotted when a flush barrier arrived, promoted to
  /// durable when that barrier completes (unless re-acked in between).
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      pending_flushes;
  std::uint64_t next_ack = 0;

  void attach(Ssd& device) {
    device.set_arrival_hook(
        [this](const sim::IoRequest& r) { on_arrival(r); });
    device.set_completion_hook(
        [this](const sim::Completion& c) { on_completion(c); });
  }

  void on_arrival(const sim::IoRequest& r) {
    if (r.type == sim::OpType::kWrite || r.type == sim::OpType::kTrim) {
      inflight_reqs.emplace(r.id, r);
      for (std::uint32_t p = 0; p < r.page_count; ++p) {
        ++keys[ftl::OobStore::pack_owner(r.tenant, r.lpn + p)].inflight;
      }
      return;
    }
    if (r.type == sim::OpType::kFlush) {
      // The device drains its write buffer the moment the flush is
      // handled (right after this hook), so "volatile now" is exactly the
      // set the barrier fences.
      auto& snapshot = pending_flushes[r.id];
      for (const auto& [key, s] : keys) {
        if (!s.durable && s.inflight == 0 && s.ack > 0) {
          snapshot.emplace_back(key, s.ack);
        }
      }
    }
  }

  void on_completion(const sim::Completion& c) {
    if (c.type == sim::OpType::kWrite || c.type == sim::OpType::kTrim) {
      const auto it = inflight_reqs.find(c.request_id);
      ASSERT_NE(it, inflight_reqs.end());
      const sim::IoRequest& r = it->second;
      for (std::uint32_t p = 0; p < r.page_count; ++p) {
        KeyState& s = keys[ftl::OobStore::pack_owner(r.tenant, r.lpn + p)];
        --s.inflight;
        s.ack = ++next_ack;
        // A trim drops the mapping, so the key has nothing durable to
        // assert; a partially buffered write is conservatively treated as
        // fully volatile.
        s.durable = c.type == sim::OpType::kWrite && c.durable();
      }
      inflight_reqs.erase(it);
      return;
    }
    if (c.type == sim::OpType::kFlush) {
      const auto it = pending_flushes.find(c.request_id);
      if (it == pending_flushes.end()) return;
      for (const auto& [key, ack] : it->second) {
        KeyState& s = keys[key];
        if (s.ack == ack) s.durable = true;  // not re-acked since the fence
      }
      pending_flushes.erase(it);
    }
  }

  /// Assert that every undisturbed acked-durable key survived recovery.
  void check_recovered(const Ssd& device) const {
    const ftl::MappingTable& map = device.ftl().mapping();
    const std::unordered_set<std::uint64_t> media_lost(
        device.media_lost_keys().begin(), device.media_lost_keys().end());
    for (const auto& [key, s] : keys) {
      if (!s.durable || s.inflight > 0 || media_lost.count(key) > 0) {
        continue;
      }
      const sim::TenantId tenant = ftl::OobStore::owner_tenant(key);
      const std::uint64_t lpn = ftl::OobStore::owner_lpn(key);
      ASSERT_NE(map.lookup(tenant, lpn), sim::kInvalidPpn)
          << "acked-durable write lost by recovery: tenant " << tenant
          << " lpn " << lpn;
    }
  }
};

std::uint64_t cut_count_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("SSDK_CRASH_FUZZ_CUTS");
  if (env == nullptr) return fallback;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<std::uint64_t>(parsed) : fallback;
}

TEST(CrashFuzz, RecoveryHoldsAcrossHundredsOfCutPoints) {
  const auto requests = fuzz_workload(900);
  const std::uint64_t cuts = cut_count_from_env(200);

  Ssd trunk(fuzz_options());
  DurabilityOracle oracle;
  oracle.attach(trunk);
  trunk.submit(requests);

  // Evenly spaced distinct cut arrivals across the whole trace, starting
  // after a short warm-up so early cuts still see in-flight work.
  const std::uint64_t first = 8;
  const std::uint64_t span = requests.size() - first;
  std::uint64_t tested = 0;
  std::uint64_t prev_cut = 0;
  std::uint64_t torn_seen = 0;
  std::uint64_t buffered_seen = 0;
  for (std::uint64_t i = 0; i < cuts; ++i) {
    const std::uint64_t cut = first + (i * span) / cuts;
    if (cut == prev_cut) continue;
    prev_cut = cut;
    trunk.run_until_arrival(cut);

    auto fork = trunk.fork();
    const PowerLossReport report = fork->power_off();
    torn_seen += report.torn_pages;
    buffered_seen += report.lost_buffered_pages;
    fork->power_on();
    fork->check_invariants();
    fork->verify_recovery();
    oracle.check_recovered(*fork);

    // Post-crash service: the fork drains the rest of the trace and the
    // device is still structurally sound afterwards.
    fork->run_to_completion();
    fork->check_invariants();
    ++tested;
  }
  EXPECT_GE(tested, cuts * 9 / 10) << "cut points collapsed together";
  // The workload must actually exercise the hard windows, or the harness
  // is fuzzing nothing.
  EXPECT_GT(torn_seen, 0u);
  EXPECT_GT(buffered_seen, 0u);

  trunk.run_to_completion();
  trunk.check_invariants();
}

/// Pinned regression: a cut that tears a GC migration write must neither
/// lose the migrating page's data nor double-count it. The OOB copy rule
/// (migrations inherit the source's sequence number; ties resolve to the
/// lower PPN) makes either surviving copy the unique winner, which
/// verify_recovery()'s bijection check pins down.
TEST(CrashFuzz, CutMidGcMigrationNeitherLosesNorDoubleCounts) {
  SsdOptions options = fuzz_options();
  // Shrink the device so overwrites keep GC running for the whole trace.
  options.geometry.blocks_per_plane = 16;
  options.write_buffer.capacity_pages = 0;  // all writes straight to flash
  options.faults = sim::FaultModel::none();

  std::vector<trace::Workload> workloads;
  for (std::uint32_t t = 0; t < 2; ++t) {
    trace::SyntheticSpec spec;
    spec.write_fraction = 0.95;
    spec.request_count = 1800;
    spec.intensity_rps = 2500.0;
    spec.address_space_pages = 400;
    spec.seed = 77 + t;
    workloads.push_back(trace::generate_synthetic(spec));
  }
  const auto requests = trace::mix_workloads(workloads);

  Ssd trunk(options);
  DurabilityOracle oracle;
  oracle.attach(trunk);
  trunk.submit(requests);

  bool found = false;
  for (std::uint64_t cut = 40; cut < requests.size(); ++cut) {
    trunk.run_until_arrival(cut);
    auto fork = trunk.fork();
    const PowerLossReport report = fork->power_off();
    if (report.torn_gc_pages == 0) continue;
    found = true;
    fork->power_on();
    fork->check_invariants();
    fork->verify_recovery();
    oracle.check_recovered(*fork);
    fork->run_to_completion();
    fork->check_invariants();
    break;
  }
  EXPECT_TRUE(found) << "no cut point caught a GC migration in flight";
}

/// Pinned regression: a cut that tears a bad-block rescue migration. The
/// rescued page's only healthy copy may be the in-flight one; recovery
/// must fall back to the retired block's surviving copy (stale-looking but
/// same version) and restart the rescue at mount.
TEST(CrashFuzz, CutMidBadBlockRescueRecovers) {
  SsdOptions options = fuzz_options();
  options.write_buffer.capacity_pages = 0;
  options.faults = sim::FaultModel::none();
  options.faults.program_fail = 0.03;  // retire blocks fast
  options.faults.program_fails_to_retire = 2;

  std::vector<trace::Workload> workloads;
  for (std::uint32_t t = 0; t < 2; ++t) {
    trace::SyntheticSpec spec;
    spec.write_fraction = 0.95;
    spec.request_count = 1800;
    spec.intensity_rps = 2500.0;
    spec.address_space_pages = 600;
    spec.seed = 977 + t;
    workloads.push_back(trace::generate_synthetic(spec));
  }
  const auto requests = trace::mix_workloads(workloads);

  Ssd trunk(options);
  trunk.submit(requests);

  bool found = false;
  for (std::uint64_t cut = 40; cut < requests.size(); ++cut) {
    trunk.run_until_arrival(cut);
    auto fork = trunk.fork();
    const PowerLossReport report = fork->power_off();
    if (report.torn_rescue_pages == 0) continue;
    found = true;
    fork->power_on();
    fork->check_invariants();
    fork->verify_recovery();
    fork->run_to_completion();
    fork->check_invariants();
    break;
  }
  EXPECT_TRUE(found) << "no cut point caught a bad-block rescue in flight";
}

/// Scheduled cuts through the run loop: a time-triggered cut with
/// auto_recover drains the remaining workload after the crash, and an
/// arrival-triggered cut without auto_recover stops the loop dead until
/// the caller powers the device back on.
TEST(CrashFuzz, ScheduledCutsFireThroughTheRunLoop) {
  const auto requests = fuzz_workload(300);

  SsdOptions auto_opts = fuzz_options();
  auto_opts.power.cut_at_time = requests[requests.size() / 2].arrival;
  auto_opts.power.auto_recover = true;
  Ssd survivor(auto_opts);
  survivor.submit(requests);
  survivor.run_to_completion();
  EXPECT_FALSE(survivor.powered_off());
  EXPECT_EQ(survivor.metrics().counters().power_cycles, 1u);
  EXPECT_GT(survivor.metrics().counters().mount_time_ns, 0u);

  SsdOptions manual_opts = fuzz_options();
  manual_opts.power.cut_at_arrival = requests.size() / 2;
  Ssd stopped(manual_opts);
  stopped.submit(requests);
  stopped.run_to_completion();
  EXPECT_TRUE(stopped.powered_off());
  EXPECT_THROW(stopped.run_to_completion(), std::logic_error);
  stopped.power_on();
  stopped.verify_recovery();
  stopped.run_to_completion();
  EXPECT_FALSE(stopped.powered_off());
}

}  // namespace
}  // namespace ssdk::ssd
