// Full-pipeline integration: dataset generation -> training -> deployment
// on the Table-IV mixes, plus the paper's headline sanity properties.
#include <gtest/gtest.h>

#include "core/keeper.hpp"
#include "core/label_gen.hpp"
#include "core/learner.hpp"
#include "trace/catalog.hpp"

namespace ssdk::core {
namespace {

class EndToEnd : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Shared across tests: a small but real trained model.
    space_ = new StrategySpace(StrategySpace::for_tenants(4));
    ThreadPool pool;
    DatasetGenConfig gen;
    gen.workloads = 400;  // 42 classes need broad feature-space coverage
    gen.workload_duration_s = 0.12;
    gen.seed = 2024;
    const auto dataset = generate_dataset(*space_, gen, pool);
    LearnerConfig learner;
    learner.max_iterations = 80;
    model_ = new LearnedModel(
        train_strategy_learner(dataset.data, *space_, learner));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete space_;
    model_ = nullptr;
    space_ = nullptr;
  }

  static StrategySpace* space_;
  static LearnedModel* model_;
};

StrategySpace* EndToEnd::space_ = nullptr;
LearnedModel* EndToEnd::model_ = nullptr;

TEST_F(EndToEnd, TrainingConverges) {
  EXPECT_LT(model_->history.final_loss, model_->history.train_loss.front());
  EXPECT_GT(model_->history.final_accuracy, 0.4);
}

TEST_F(EndToEnd, KeeperNeverFarFromBestBaseline) {
  // SSDKeeper must track min(Shared, Isolated) within a modest factor on
  // every Table-IV mix (the paper's headline property, Figure 5).
  KeeperConfig keeper_config;
  keeper_config.collect_window_ns = 60 * kMillisecond;
  RunConfig baseline;
  for (std::uint32_t m = 1; m <= 4; ++m) {
    const auto requests = trace::build_mix(m, 0.3, 0, /*seed=*/5);
    const auto features = features_of(requests);
    const auto profiles = features.profiles(4);
    const auto shared = run_with_strategy(requests, space_->shared(),
                                          profiles, baseline);
    const auto isolated = run_with_strategy(requests, space_->isolated(),
                                            profiles, baseline);
    const auto keeper = run_with_keeper(requests, model_->allocator,
                                        keeper_config, baseline.ssd);
    const double best_baseline = std::min(shared.total_us, isolated.total_us);
    EXPECT_LT(keeper.run.total_us, best_baseline * 1.6)
        << "Mix" << m << " chose " << keeper.strategy.name();
  }
}

TEST_F(EndToEnd, IsolatedCatastrophicOnSkewedMix) {
  // Paper Section V.C: blindly isolating Mix1 (prxy_0-dominated) costs
  // ~3x versus Shared. Shape check: Isolated must be clearly worse.
  const auto requests = trace::build_mix(1, 0.3);
  const auto profiles = features_of(requests).profiles(4);
  RunConfig baseline;
  const auto shared =
      run_with_strategy(requests, space_->shared(), profiles, baseline);
  const auto isolated =
      run_with_strategy(requests, space_->isolated(), profiles, baseline);
  EXPECT_GT(isolated.total_us, shared.total_us * 1.5);
}

TEST_F(EndToEnd, ModelSurvivesSerializationInDeployment) {
  const std::string path = testing::TempDir() + "/ssdk_e2e_model.txt";
  model_->allocator.save(path);
  const auto loaded = ChannelAllocator::load(path, *space_);
  const auto requests = trace::build_mix(2, 0.25);
  const auto features = features_of(requests);
  EXPECT_EQ(loaded.predict_index(features),
            model_->allocator.predict_index(features));
  std::remove(path.c_str());
}

TEST_F(EndToEnd, HybridPageAllocationHelpsOnAverage) {
  // Paper Section V.C: hybrid page allocation adds ~2.1% on average.
  // Shape check: averaged over the four mixes it must not hurt.
  RunConfig plain, hybrid;
  hybrid.hybrid_page_allocation = true;
  double plain_total = 0.0, hybrid_total = 0.0;
  for (std::uint32_t m = 1; m <= 4; ++m) {
    const auto requests = trace::build_mix(m, 0.25);
    const auto profiles = features_of(requests).profiles(4);
    plain_total +=
        run_with_strategy(requests, space_->shared(), profiles, plain)
            .total_us;
    hybrid_total +=
        run_with_strategy(requests, space_->shared(), profiles, hybrid)
            .total_us;
  }
  EXPECT_LT(hybrid_total, plain_total * 1.02);
}

}  // namespace
}  // namespace ssdk::core
