// Shared plumbing for the paper-reproduction benchmark binaries: consistent
// headers, config handling, and a cached trained model so the fig5/fig6/
// table5 benches don't each pay for dataset generation when
// bench_fig4_table3_training already produced one.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/label_gen.hpp"
#include "core/learner.hpp"
#include "util/config.hpp"
#include "util/thread_pool.hpp"

namespace ssdk::bench {

inline constexpr const char* kDefaultModelPath =
    "/tmp/ssdkeeper_bench_model.txt";

/// Git revision the bench binary was configured from (baked in by
/// bench/CMakeLists.txt at configure time; "unknown" outside a checkout).
inline const char* git_rev() {
#ifdef SSDK_GIT_REV
  return SSDK_GIT_REV;
#else
  return "unknown";
#endif
}

/// Open a BENCH_*.json file and emit the shared schema prefix every bench
/// reports: `bench_name` (stable identifier, independent of the output
/// path), `git_rev` (provenance for archived artifacts), and `floor` (the
/// minimum acceptable value of the bench's headline metric; 0 =
/// informational, nothing asserted). The caller streams its own fields
/// after the prefix and writes the closing brace.
inline std::ofstream open_bench_json(const std::string& path,
                                     const char* bench_name, double floor) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench_name\": \"" << bench_name << "\",\n"
     << "  \"git_rev\": \"" << git_rev() << "\",\n"
     << "  \"floor\": " << floor << ",\n";
  return os;
}

inline void print_header(const char* title, const core::RunConfig& run) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("SSD (Table I, scaled blocks): %s\n",
              run.ssd.geometry.describe().c_str());
  std::printf("timing: %s\n",
              run.ssd.timing.describe(run.ssd.geometry).c_str());
  std::printf("==================================================\n");
}

/// Train (or load a cached) strategy learner for the 4-tenant space.
/// `workloads` and `requests` scale the label-generation effort.
inline core::ChannelAllocator obtain_allocator(
    const Config& cfg, const core::StrategySpace& space, ThreadPool& pool) {
  const std::string path = cfg.get_string("model", kDefaultModelPath);
  const bool retrain = cfg.get_bool("retrain", false);
  if (!retrain && std::filesystem::exists(path)) {
    std::printf("loading cached model: %s\n", path.c_str());
    return core::ChannelAllocator::load(path, space);
  }
  core::DatasetGenConfig gen;
  gen.workloads = cfg.get_uint("train_workloads", 400);
  gen.workload_duration_s = cfg.get_double("train_duration", 0.35);
  gen.requests_per_workload = cfg.get_uint("train_requests", 0);
  gen.seed = cfg.get_uint("train_seed", 2024);
  std::printf("training model: %llu workloads x %zu strategies "
              "(cache: %s)\n",
              static_cast<unsigned long long>(gen.workloads), space.size(),
              path.c_str());
  const auto dataset = core::generate_dataset(space, gen, pool);
  core::LearnerConfig learner;
  learner.optimizer = cfg.get_string("optimizer", "adam");
  learner.activation = cfg.get_string("activation", "logistic");
  learner.max_iterations = cfg.get_uint("iterations", 200);
  auto learned = core::train_strategy_learner(dataset.data, space, learner);
  std::printf("trained: test accuracy %.1f%% (loss %.3f)\n",
              learned.history.final_accuracy * 100.0,
              learned.history.final_loss);
  learned.allocator.save(path);
  return std::move(learned.allocator);
}

}  // namespace ssdk::bench
