// Figure 2 reproduction: two tenants (one write-only, one read-only) share
// the 8-channel SSD; the write proportion of a fixed total request budget
// sweeps 10%..90% under all eight 2-tenant channel-allocation strategies.
// Prints three series — write, read and total response latency, each
// normalized to Shared — matching Figure 2 (a), (b), (c).
//
// Shape targets (paper Section III):
//   * read latency falls monotonically as the read tenant gains channels;
//   * write latency explodes when the write tenant's channels are too few;
//   * no single strategy wins at every write proportion.
//
// Overrides: requests=N rate=R seed=S (key=value args).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/label_gen.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

using namespace ssdk;

namespace {

struct SweepPoint {
  double write_prop;
  std::vector<double> write_us;
  std::vector<double> read_us;
  std::vector<double> total_us;
};

std::vector<sim::IoRequest> make_two_tenant_mix(double write_prop,
                                                std::uint64_t requests,
                                                double rate,
                                                std::uint64_t seed) {
  trace::SyntheticSpec writer;
  writer.write_fraction = 1.0;
  writer.request_count = static_cast<std::uint64_t>(
      write_prop * static_cast<double>(requests));
  writer.intensity_rps = rate * write_prop;
  writer.mean_request_pages = 1.0;
  writer.seed = seed;
  trace::SyntheticSpec reader;
  reader.write_fraction = 0.0;
  reader.request_count = requests - writer.request_count;
  reader.intensity_rps = rate * (1.0 - write_prop);
  reader.mean_request_pages = 1.0;
  reader.seed = seed + 1;
  return trace::mix_workloads(std::vector<trace::Workload>{
      trace::generate_synthetic(writer), trace::generate_synthetic(reader)});
}

void print_series(const char* title, const core::StrategySpace& space,
                  const std::vector<SweepPoint>& sweep,
                  std::vector<double> SweepPoint::* series) {
  std::printf("\n%s (normalized to Shared)\n", title);
  std::printf("%-8s", "wr-prop");
  for (std::size_t s = 0; s < space.size(); ++s) {
    std::printf(" %9s", space.at(s).name().c_str());
  }
  std::printf("\n");
  for (const auto& point : sweep) {
    std::printf("%-8.1f", point.write_prop);
    const auto& values = point.*series;
    const double base = values[0];  // index 0 = Shared
    for (const double v : values) {
      std::printf(" %9.3f", base > 0.0 ? v / base : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::uint64_t requests = cfg.get_uint("requests", 40'000);
  const double rate = cfg.get_double("rate", 18'000.0);
  const std::uint64_t seed = cfg.get_uint("seed", 1);

  const auto space = core::StrategySpace::for_tenants(2);
  core::LabelGenConfig config;
  ThreadPool pool;

  bench::print_header(
      "Figure 2: two tenants, write-proportion sweep, all 8 strategies",
      config.run);
  std::printf("requests=%llu rate=%.0f req/s (1-page requests)\n",
              static_cast<unsigned long long>(requests), rate);

  std::vector<SweepPoint> sweep;
  std::vector<std::string> best_at;
  for (int wp = 1; wp <= 9; ++wp) {
    const double write_prop = wp / 10.0;
    const auto requests_mix =
        make_two_tenant_mix(write_prop, requests, rate, seed);
    const auto features = core::features_of(requests_mix, config.features);
    const auto profiles = features.profiles(2);

    SweepPoint point;
    point.write_prop = write_prop;
    point.write_us.resize(space.size());
    point.read_us.resize(space.size());
    point.total_us.resize(space.size());
    parallel_for(pool, space.size(), [&](std::size_t s) {
      const auto result = core::run_with_strategy(requests_mix, space.at(s),
                                                  profiles, config.run);
      point.write_us[s] = result.avg_write_us;
      point.read_us[s] = result.avg_read_us;
      point.total_us[s] = result.total_us;
    });
    std::size_t best = 0;
    for (std::size_t s = 1; s < space.size(); ++s) {
      if (point.total_us[s] < point.total_us[best]) best = s;
    }
    best_at.push_back(space.at(best).name());
    sweep.push_back(std::move(point));
  }

  print_series("Figure 2(a): write response latency", space, sweep,
               &SweepPoint::write_us);
  print_series("Figure 2(b): read response latency", space, sweep,
               &SweepPoint::read_us);
  print_series("Figure 2(c): total response latency", space, sweep,
               &SweepPoint::total_us);

  // Plot-ready CSV (one file per panel) via the report module.
  const std::string csv_dir = cfg.get_string("csv_dir", "/tmp");
  const auto dump = [&](const char* panel,
                        std::vector<double> SweepPoint::* series) {
    core::SweepTable table;
    table.x_label = "write_proportion";
    for (const auto& point : sweep) table.x.push_back(point.write_prop);
    for (std::size_t s_idx = 0; s_idx < space.size(); ++s_idx) {
      core::Series col;
      col.name = space.at(s_idx).name();
      for (const auto& point : sweep) {
        col.values.push_back((point.*series)[s_idx]);
      }
      table.series.push_back(std::move(col));
    }
    const std::string path =
        csv_dir + "/ssdkeeper_fig2_" + panel + ".csv";
    core::write_sweep_csv_file(path, table);
    std::printf("wrote %s\n", path.c_str());
  };
  dump("write_us", &SweepPoint::write_us);
  dump("read_us", &SweepPoint::read_us);
  dump("total_us", &SweepPoint::total_us);

  std::printf("\nbest strategy per write proportion:\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::printf("  %.1f -> %s\n", sweep[i].write_prop, best_at[i].c_str());
  }
  std::printf("\nshape check: the winner shifts with the write proportion, "
              "so no single static allocation fits all mixes "
              "(paper Section III.B).\n");
  return 0;
}
