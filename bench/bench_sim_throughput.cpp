// Simulator throughput microbenchmark: replays the canonical 4-tenant
// catalog mix (Table IV Mix 1) on a fresh device and reports events/sec and
// requests/sec for the serial hot path, plus the end-to-end wall time of
// one Algorithm-1 labeling sweep (label_workload = 42 full simulations).
// Emits machine-readable JSON so CI can archive the trajectory and future
// PRs can compare against BENCH_sim_throughput.json.
//
// Usage: bench_sim_throughput [mix=1] [duration_s=0.4] [max_requests=30000]
//                             [repeat=3] [label_workloads=1]
//                             [floor_events_per_s=3.0e6]
//                             [json=BENCH_sim_throughput.json]
//
// floor_events_per_s lands in the JSON as the min-bound the CI gate
// (tools/bench/check_bench_floors.py) enforces against future runs.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/label_gen.hpp"
#include "trace/catalog.hpp"
#include "util/config.hpp"

using namespace ssdk;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ReplayStats {
  double best_s = 0.0;       ///< fastest repeat (least scheduler noise)
  double requests_per_s = 0.0;
  double events_per_s = 0.0;  ///< page ops (flash + bus grants) per second
  std::uint64_t requests = 0;
  std::uint64_t page_ops = 0;
};

ReplayStats replay_mix(const std::vector<sim::IoRequest>& requests,
                       const core::RunConfig& config, int repeat) {
  ReplayStats stats;
  stats.requests = requests.size();
  const auto features = core::features_of(requests);
  const auto profiles = features.profiles(4);
  for (int i = 0; i < repeat; ++i) {
    const auto start = Clock::now();
    const core::RunResult r = core::run_with_strategy(
        requests, core::Strategy{}, profiles, config);
    const double elapsed = seconds_since(start);
    if (i == 0 || elapsed < stats.best_s) {
      stats.best_s = elapsed;
      stats.page_ops = r.counters.page_ops;
    }
  }
  stats.requests_per_s = static_cast<double>(stats.requests) / stats.best_s;
  stats.events_per_s = static_cast<double>(stats.page_ops) / stats.best_s;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto mix = static_cast<std::uint32_t>(cfg.get_uint("mix", 1));
  const double duration_s = cfg.get_double("duration_s", 0.4);
  const std::uint64_t max_requests = cfg.get_uint("max_requests", 30'000);
  const int repeat = static_cast<int>(cfg.get_uint("repeat", 3));
  const auto label_runs = cfg.get_uint("label_workloads", 1);
  // Default floor: well under the ~4.3-5.0 M page-ops/s a dedicated box
  // sustains, because shared CI runners swing ±30-40% run to run. The
  // gate exists to catch complexity-class regressions (an accidental
  // O(n^2), a dropped fast path), not few-percent drift.
  const double floor_events_per_s =
      cfg.get_double("floor_events_per_s", 3.0e6);
  const std::string json_path =
      cfg.get_string("json", "BENCH_sim_throughput.json");

  const auto requests = trace::build_mix(mix, duration_s, max_requests);
  std::printf("mix %u: %zu requests over %.2f s\n", mix, requests.size(),
              duration_s);

  core::RunConfig config;
  config.reserve_requests = requests.size();
  const ReplayStats replay = replay_mix(requests, config, repeat);
  std::printf("replay: best %.3f s, %.0f requests/s, %.0f page-ops/s\n",
              replay.best_s, replay.requests_per_s, replay.events_per_s);

  // One Algorithm-1 labeling sweep: every strategy in the 4-tenant space on
  // the same mix. This is the inner loop that gates dataset generation.
  const auto space = core::StrategySpace::for_tenants(4);
  core::LabelGenConfig label;
  label.run = config;
  double label_s = 0.0;
  for (std::uint64_t i = 0; i < label_runs; ++i) {
    const auto start = Clock::now();
    core::label_workload(requests, space, label, nullptr);
    const double elapsed = seconds_since(start);
    if (i == 0 || elapsed < label_s) label_s = elapsed;
  }
  std::printf("label_workload: %.3f s for %zu strategies\n", label_s,
              space.size());

  // Legacy "floor" stays 0 (speedup-style floors don't apply here); the
  // enforced bound is floor_events_per_s, which the committed JSON carries
  // and tools/bench/check_bench_floors.py asserts against fresh runs.
  std::ofstream os = bench::open_bench_json(json_path, "sim_throughput", 0.0);
  os << "  \"mix\": " << mix << ",\n"
     << "  \"duration_s\": " << duration_s << ",\n"
     << "  \"requests\": " << replay.requests << ",\n"
     << "  \"page_ops\": " << replay.page_ops << ",\n"
     << "  \"replay_best_s\": " << replay.best_s << ",\n"
     << "  \"requests_per_s\": " << replay.requests_per_s << ",\n"
     << "  \"events_per_s\": " << replay.events_per_s << ",\n"
     << "  \"floor_events_per_s\": " << floor_events_per_s << ",\n"
     << "  \"label_workload_s\": " << label_s << ",\n"
     << "  \"strategies\": " << space.size() << "\n"
     << "}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
