// Fleet-scale throughput and placement ablation (DESIGN.md §15).
//
// Two questions in one bench:
//   1. Scaling — how fast does one fleet run complete as the worker pool
//      grows? Reported as devices/s (device-epochs per wall second /
//      epochs) and events/s (page ops per wall second) per thread count.
//      The fleet result fingerprint must be identical at every thread
//      count; the bench exits non-zero if pooled execution ever changes
//      the simulation.
//   2. Placement ablation — aggregate p99 under round_robin,
//      least_loaded and workload_aware on the same tenant population.
//      The population puts a heavy sequential writer at every
//      `devices`-th tenant index, the adversarial case for round-robin
//      (all writers collapse onto device 0); workload-aware spreads them
//      and must beat round-robin on aggregate p99 (floor 1.0 on the
//      p99 ratio — asserted, not just recorded).
//
// Usage: bench_fleet_scale [devices=16] [tenants=32] [epochs=3]
//          [epoch_ms=40] [threads=1,2,4,8] [seed=7]
//          [json=BENCH_fleet_scale.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "util/config.hpp"

using namespace ssdk;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<std::size_t> parse_threads(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(static_cast<std::size_t>(std::stoull(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::uint64_t total_page_ops(const fleet::FleetResult& r) {
  std::uint64_t ops = 0;
  for (const auto& d : r.device_results) ops += d.run.counters.page_ops;
  return ops;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  fleet::FleetConfig config;
  config.devices = static_cast<std::uint32_t>(cfg.get_uint("devices", 16));
  config.epochs = static_cast<std::uint32_t>(cfg.get_uint("epochs", 3));
  config.epoch_ns = static_cast<Duration>(cfg.get_uint("epoch_ms", 40)) *
                    kMillisecond;
  config.seed = cfg.get_uint("seed", 7);
  config.ssd.geometry = sim::Geometry::small();
  config.isolated_baseline = false;  // scaling bench: fleet wall time only
  const auto tenants_n =
      static_cast<std::uint32_t>(cfg.get_uint("tenants", 32));
  const auto thread_counts =
      parse_threads(cfg.get_string("threads", "1,2,4,8"));
  const std::string json_path =
      cfg.get_string("json", "BENCH_fleet_scale.json");

  const auto specs =
      fleet::make_tenant_specs(tenants_n, config.devices, config.epoch_ns);
  std::printf("fleet: %u devices, %u tenants, %u epochs of %.0f ms "
              "(seed %llu)\n",
              config.devices, tenants_n, config.epochs,
              static_cast<double>(config.epoch_ns) / 1e6,
              static_cast<unsigned long long>(config.seed));

  // --- 1. scaling: same fleet, growing pool ------------------------------
  const fleet::WorkloadAwarePlacement aware;
  struct ScalePoint {
    std::size_t threads;
    double wall_s;
    double devices_per_s;
    double events_per_s;
    std::uint64_t fingerprint;
  };
  std::vector<ScalePoint> scale;
  for (const std::size_t threads : thread_counts) {
    const auto start = Clock::now();
    const auto result = fleet::run_fleet(config, specs, aware, threads);
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    ScalePoint p;
    p.threads = threads;
    p.wall_s = wall;
    p.devices_per_s = static_cast<double>(config.devices) / wall;
    p.events_per_s = static_cast<double>(total_page_ops(result)) / wall;
    p.fingerprint = result.fingerprint();
    std::printf("threads=%2zu: %.3f s wall, %.1f devices/s, "
                "%.0f events/s, fingerprint %016llx\n",
                threads, wall, p.devices_per_s, p.events_per_s,
                static_cast<unsigned long long>(p.fingerprint));
    scale.push_back(p);
  }
  for (const auto& p : scale) {
    if (p.fingerprint != scale.front().fingerprint) {
      std::fprintf(stderr,
                   "FAIL: fleet result diverged across thread counts\n");
      return EXIT_FAILURE;
    }
  }

  // --- 2. placement ablation at the widest pool --------------------------
  const std::size_t ablation_threads = thread_counts.back();
  struct AblationPoint {
    std::string policy;
    double p99_total_us;
    double aggregate_total_us;
    std::size_t migrations;
  };
  std::vector<AblationPoint> ablation;
  for (const auto& name : fleet::policy_names()) {
    const auto policy = fleet::make_policy(name);
    const auto result =
        fleet::run_fleet(config, specs, *policy, ablation_threads);
    AblationPoint a;
    a.policy = name;
    a.p99_total_us =
        result.aggregate_p99_read_us + result.aggregate_p99_write_us;
    a.aggregate_total_us = result.aggregate_total_us;
    a.migrations = result.migrations.size();
    std::printf("policy %-15s: aggregate p99 %.1f us, total %.1f us, "
                "%zu migrations\n",
                name.c_str(), a.p99_total_us, a.aggregate_total_us,
                a.migrations);
    ablation.push_back(a);
  }
  const double rr_p99 = ablation[0].p99_total_us;
  const double aware_p99 = ablation[2].p99_total_us;
  const double p99_ratio = aware_p99 > 0.0 ? rr_p99 / aware_p99 : 0.0;
  std::printf("round_robin / workload_aware p99 ratio: %.2fx\n", p99_ratio);

  std::ofstream os = bench::open_bench_json(json_path, "fleet_scale", 1.0);
  os << "  \"devices\": " << config.devices << ",\n"
     << "  \"tenants\": " << tenants_n << ",\n"
     << "  \"epochs\": " << config.epochs << ",\n"
     << "  \"seed\": " << config.seed << ",\n"
     << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scale.size(); ++i) {
    os << "    {\"threads\": " << scale[i].threads
       << ", \"wall_s\": " << scale[i].wall_s
       << ", \"devices_per_s\": " << scale[i].devices_per_s
       << ", \"events_per_s\": " << scale[i].events_per_s << "}"
       << (i + 1 < scale.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"deterministic_across_threads\": true,\n"
     << "  \"ablation\": [\n";
  for (std::size_t i = 0; i < ablation.size(); ++i) {
    os << "    {\"policy\": \"" << ablation[i].policy
       << "\", \"aggregate_p99_us\": " << ablation[i].p99_total_us
       << ", \"aggregate_total_us\": " << ablation[i].aggregate_total_us
       << ", \"migrations\": " << ablation[i].migrations << "}"
       << (i + 1 < ablation.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"p99_ratio_round_robin_over_workload_aware\": " << p99_ratio
     << "\n"
     << "}\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (p99_ratio < 1.0) {
    std::fprintf(stderr,
                 "FAIL: workload_aware did not beat round_robin on "
                 "aggregate p99 (ratio %.3f < floor 1.0)\n",
                 p99_ratio);
    return EXIT_FAILURE;
  }
  return 0;
}
