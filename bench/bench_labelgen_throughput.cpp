// Shared-prefix fork sweep vs cold-start sweep: the wall-clock payoff of
// the snapshot/fork subsystem on Algorithm-1 label generation.
//
// Both sweeps evaluate every strategy in the 4-tenant space on the same
// synthesized workloads with the candidate taking effect at fork_point.
// The cold sweep re-simulates the warm-up prefix for all 42 candidates;
// the fork sweep simulates it once and fork()s the device per candidate.
// The bench asserts the two produce identical labels and per-strategy
// latencies (fork correctness), then reports the speedup. Emits
// BENCH_labelgen_throughput.json so CI archives the trajectory.
//
// The defaults trade bench runtime against signal: the fork() deep copy
// is paid once per candidate, so short suffixes (low fork_point, short
// workloads) understate the win a long campaign sees.
//
// Usage: bench_labelgen_throughput [workloads=4] [duration_s=0.6]
//          [fork_point=0.7] [repeat=2]
//          [threads=0  (0 = hardware concurrency)]
//          [floor_cold_sweep_s=1.5]
//          [json=BENCH_labelgen_throughput.json] [audit=0]
//
// Both sweeps run through a ThreadPool (threads=0 sizes it to the
// machine); the JSON records the pool's actual worker count, never a
// placeholder 0. floor_cold_sweep_s lands in the JSON as the max-bound
// the CI gate (tools/bench/check_bench_floors.py) enforces against
// future runs.
//
// audit=N (N > 0) runs the device invariant auditor every N arrivals on
// every device both sweeps create (including the per-candidate forks).
// Auditing is schedule-neutral but not free, so the reported speedup is
// only meaningful at audit=0; use the flag to soak-test fork()/snapshot
// changes under the full sweep, not to measure them.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "snapshot/campaign.hpp"
#include "util/config.hpp"

using namespace ssdk;
using Clock = std::chrono::steady_clock;

namespace {

double sweep_seconds(const std::vector<std::vector<sim::IoRequest>>& mixes,
                     const core::StrategySpace& space,
                     const core::LabelGenConfig& config, ThreadPool* pool,
                     int repeat, std::vector<core::LabeledSample>& out) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    std::vector<core::LabeledSample> samples;
    samples.reserve(mixes.size());
    const auto start = Clock::now();
    for (const auto& requests : mixes) {
      samples.push_back(
          core::label_workload(requests, space, config, pool));
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (r == 0 || elapsed < best) best = elapsed;
    out = std::move(samples);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::uint64_t workloads = cfg.get_uint("workloads", 4);
  const double duration_s = cfg.get_double("duration_s", 0.6);
  const double fork_point = cfg.get_double("fork_point", 0.7);
  const int repeat = static_cast<int>(cfg.get_uint("repeat", 2));
  const std::uint64_t threads = cfg.get_uint("threads", 0);
  // Max-bound with wide noise margin: a dedicated single-core box runs
  // the cold sweep in ~1.0 s; the floor flags only regressions far past
  // shared-runner jitter. (Fan-out helps on multi-core runners, but the
  // floor must hold on one core, where the sweep is serial.)
  const double floor_cold_sweep_s = cfg.get_double("floor_cold_sweep_s", 1.5);
  const std::string json_path =
      cfg.get_string("json", "BENCH_labelgen_throughput.json");

  const auto space = core::StrategySpace::for_tenants(4);
  core::DatasetGenConfig gen;
  gen.workloads = workloads;
  gen.workload_duration_s = duration_s;
  gen.seed = cfg.get_uint("seed", 2024);

  std::vector<std::vector<sim::IoRequest>> mixes;
  std::uint64_t total_requests = 0;
  for (std::uint64_t i = 0; i < workloads; ++i) {
    mixes.push_back(core::synthesize_mix(gen, i));
    total_requests += mixes.back().size();
  }
  // Always run through the pool (threads=0 = hardware concurrency): the
  // sweep is the parallel code path production uses, and the JSON records
  // the pool's real worker count.
  const auto pool = std::make_unique<ThreadPool>(threads);

  bench::print_header("Label-generation throughput: cold vs fork sweep",
                      gen.label.run);
  std::printf("%llu workloads, %llu requests total, %zu strategies, "
              "fork_point %.2f, pool of %zu\n",
              static_cast<unsigned long long>(workloads),
              static_cast<unsigned long long>(total_requests), space.size(),
              fork_point, pool->size());

  core::LabelGenConfig cold = gen.label;
  cold.fork_point = fork_point;
  cold.shared_prefix_fork = false;
  cold.run.audit_interval = cfg.get_uint("audit", 0);
  core::LabelGenConfig fork = cold;
  fork.shared_prefix_fork = true;

  std::vector<core::LabeledSample> cold_samples;
  std::vector<core::LabeledSample> fork_samples;
  const double cold_s =
      sweep_seconds(mixes, space, cold, pool.get(), repeat, cold_samples);
  const double fork_s =
      sweep_seconds(mixes, space, fork, pool.get(), repeat, fork_samples);

  // The fork sweep must be a pure wall-clock optimization: identical
  // labels and per-strategy latencies, or the speedup is meaningless.
  bool identical = cold_samples.size() == fork_samples.size();
  for (std::size_t i = 0; identical && i < cold_samples.size(); ++i) {
    identical = cold_samples[i].label == fork_samples[i].label &&
                cold_samples[i].strategy_total_us ==
                    fork_samples[i].strategy_total_us;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: fork sweep diverged from the cold sweep\n");
    return EXIT_FAILURE;
  }

  const double speedup = cold_s / fork_s;
  std::printf("cold sweep: %.3f s\nfork sweep: %.3f s\nspeedup: %.2fx "
              "(labels identical)\n",
              cold_s, fork_s, speedup);

  // Headline metric: fork-sweep speedup; DESIGN.md §13 sets the 1.3x
  // floor a healthy machine should clear (CI records, doesn't assert).
  std::ofstream os =
      bench::open_bench_json(json_path, "labelgen_throughput", 1.3);
  os << "  \"workloads\": " << workloads << ",\n"
     << "  \"requests\": " << total_requests << ",\n"
     << "  \"strategies\": " << space.size() << ",\n"
     << "  \"fork_point\": " << fork_point << ",\n"
     << "  \"threads\": " << pool->size() << ",\n"
     << "  \"cold_sweep_s\": " << cold_s << ",\n"
     << "  \"fork_sweep_s\": " << fork_s << ",\n"
     << "  \"speedup\": " << speedup << ",\n"
     << "  \"floor_cold_sweep_s\": " << floor_cold_sweep_s << ",\n"
     << "  \"labels_identical\": true\n"
     << "}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
