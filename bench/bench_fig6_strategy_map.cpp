// Figure 6 reproduction: SSDKeeper's chosen channel-allocation strategy as
// a function of (intensity level, total write proportion). The paper plots
// the prediction for many mixed workloads; we sweep a feature grid through
// the trained model and print the strategy map (four-part strategies are
// shown in their canonical sorted form, the paper's simplification).
//
// Shape targets: low intensity -> write-heavy mixes get more write
// channels as write proportion grows; low write proportion at moderate
// intensity -> most channels to the readers (e.g. 1:7); high intensity,
// high write proportion -> most channels to the writers (e.g. 7:1).
//
// With oracle=1 the bench additionally computes the ground-truth map on a
// coarser grid by synthesizing a workload per cell and exhaustively
// sweeping all 42 strategies (slower but substrate truth, independent of
// the learned model).
//
// Overrides: threads=T retrain=0|1 model=PATH oracle=0|1 duration=S.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

using namespace ssdk;

namespace {
/// Canonical display name: four-part strategies sorted descending (the
/// paper's 5:1:1:1-style simplification).
std::string canonical_name(const core::Strategy& s) {
  if (s.kind != core::StrategyKind::kFourPart) return s.name();
  auto parts = s.parts;
  std::sort(parts.begin(), parts.end(), std::greater<>());
  return std::to_string(parts[0]) + ":" + std::to_string(parts[1]) + ":" +
         std::to_string(parts[2]) + ":" + std::to_string(parts[3]);
}
}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto space = core::StrategySpace::for_tenants(4);
  ThreadPool pool(static_cast<std::size_t>(cfg.get_uint("threads", 0)));

  core::RunConfig run;
  bench::print_header(
      "Figure 6: strategy map over (intensity level, write proportion)",
      run);
  const auto allocator = bench::obtain_allocator(cfg, space, pool);

  // Grid: intensity level 0..19 (x-axis), total write proportion 0.1..0.9
  // (y-axis). Each cell is a 4-tenant feature vector with two write-
  // dominated and two read-dominated tenants whose proportions realize
  // the requested total write share.
  std::printf("\n%-8s", "wr-prop");
  for (int level = 0; level < 20; level += 2) std::printf(" %-8d", level);
  std::printf("\n");
  for (int wp = 9; wp >= 1; --wp) {
    const double write_prop = wp / 10.0;
    std::printf("%-8.1f", write_prop);
    for (int level = 0; level < 20; level += 2) {
      core::MixFeatures f;
      f.intensity_level = static_cast<std::uint32_t>(level);
      f.read_dominated = {0, 0, 1, 1};  // tenants 0,1 write; 2,3 read
      f.proportion = {write_prop * 0.7, write_prop * 0.3,
                      (1.0 - write_prop) * 0.7, (1.0 - write_prop) * 0.3};
      const auto strategy = allocator.predict(f);
      std::printf(" %-8s", canonical_name(strategy).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n(read as paper Figure 6: x = intensity level, y = total "
              "write proportion; cell = chosen strategy, four-part names "
              "canonicalized)\n");

  if (cfg.get_bool("oracle", true)) {
    // Ground-truth map: synthesize a 4-tenant workload per cell (two
    // write-dominated + two read-dominated tenants realizing the cell's
    // write share) and label it by exhaustive strategy sweep.
    const double duration = cfg.get_double("duration", 0.4);
    core::LabelGenConfig label_config;
    std::printf("\noracle map (exhaustive sweeps, coarse grid):\n%-8s",
                "wr-prop");
    for (int level = 3; level < 20; level += 4) {
      std::printf(" %-8d", level);
    }
    std::printf("\n");
    for (int wp = 9; wp >= 1; wp -= 2) {
      const double write_prop = wp / 10.0;
      std::printf("%-8.1f", write_prop);
      for (int level = 3; level < 20; level += 4) {
        const double rate = (level + 0.5) / 20.0 *
                            label_config.features.max_intensity_rps;
        const std::array<double, 4> shares{write_prop * 0.7,
                                           write_prop * 0.3,
                                           (1.0 - write_prop) * 0.7,
                                           (1.0 - write_prop) * 0.3};
        std::vector<trace::Workload> workloads;
        for (std::size_t t = 0; t < 4; ++t) {
          // Writers shaped like prxy_0 (small, scattered), readers like
          // src_1 (large, sequential) — the catalog archetypes.
          const bool writer = t < 2;
          trace::SyntheticSpec spec;
          spec.write_fraction = writer ? 0.9 : 0.1;
          spec.intensity_rps = std::max(1.0, rate * shares[t]);
          spec.request_count = static_cast<std::uint64_t>(
              spec.intensity_rps * duration) + 4;
          spec.mean_request_pages = writer ? 1.5 : 4.0;
          spec.sequential_fraction = writer ? 0.15 : 0.5;
          spec.zipf_theta = writer ? 0.4 : 0.25;
          spec.address_space_pages = 32 * 1024;
          spec.seed = 1000 + static_cast<std::uint64_t>(level) * 16 +
                      static_cast<std::uint64_t>(wp) * 4 + t;
          workloads.push_back(trace::generate_synthetic(spec));
        }
        const auto mixed = trace::mix_workloads(workloads);
        const auto sample =
            core::label_workload(mixed, space, label_config, &pool);
        std::printf(" %-8s",
                    canonical_name(space.at(sample.label)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
