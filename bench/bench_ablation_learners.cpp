// Ablation: strategy-learner model class (paper Section IV.C).
//
// The paper argues for an ANN over k-nearest neighbors / Bayesian methods
// because the ANN "does not need to save all the training data set, only
// a small number of parameters". This bench makes the trade-off concrete
// on the real strategy-learning dataset: accuracy (5-fold cross-validated
// for the ANN), retained memory, and per-query inference latency.
//
// Overrides: workloads=N duration=S threads=T.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "nn/cross_validation.hpp"
#include "nn/knn.hpp"
#include "nn/naive_bayes.hpp"
#include "nn/metrics.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto space = core::StrategySpace::for_tenants(4);
  ThreadPool pool(static_cast<std::size_t>(cfg.get_uint("threads", 0)));

  core::DatasetGenConfig gen;
  gen.workloads = cfg.get_uint("workloads", 200);
  gen.workload_duration_s = cfg.get_double("duration", 0.35);
  gen.seed = cfg.get_uint("train_seed", 77);

  core::RunConfig header_cfg;
  bench::print_header("Ablation: ANN vs k-NN strategy learner", header_cfg);
  std::printf("dataset: %llu labeled mixed workloads\n",
              static_cast<unsigned long long>(gen.workloads));
  const auto dataset = core::generate_dataset(space, gen, pool);

  // --- ANN: 5-fold cross-validation + memory/latency ----------------------
  nn::CrossValidationOptions cv;
  cv.folds = 5;
  cv.train.max_iterations = 120;
  const auto ann_cv = nn::k_fold_cross_validate(
      dataset.data, cv,
      [&] {
        return nn::Mlp({core::kFeatureDim, 64, space.size()},
                       nn::Activation::kLogistic, 42);
      },
      [] { return nn::make_optimizer("adam"); });

  nn::Mlp ann({core::kFeatureDim, 64, space.size()},
              nn::Activation::kLogistic, 42);
  const std::size_t ann_bytes = ann.parameter_count() * sizeof(double);

  // --- k-NN: same folds via manual split (fit = store) ---------------------
  Rng rng(7);
  nn::Dataset shuffled = dataset.data;
  shuffled.shuffle(rng);
  auto [train_raw, test_raw] = shuffled.split(0.8);
  nn::StandardScaler scaler;
  scaler.fit(train_raw.features());
  nn::Dataset train(scaler.transform(train_raw.features()),
                    std::vector<std::uint32_t>(train_raw.labels()));
  nn::Dataset test(scaler.transform(test_raw.features()),
                   std::vector<std::uint32_t>(test_raw.labels()));

  double best_knn_acc = 0.0;
  std::size_t best_k = 1;
  for (const std::size_t k : {1u, 3u, 5u, 9u}) {
    nn::KnnClassifier knn(k);
    knn.fit(train);
    const double acc = nn::accuracy(knn.predict(test.features()),
                                    test.labels());
    if (acc > best_knn_acc) {
      best_knn_acc = acc;
      best_k = k;
    }
  }
  nn::KnnClassifier knn(best_k);
  knn.fit(train);

  // --- Gaussian Naive Bayes -------------------------------------------------
  nn::NaiveBayesClassifier nb;
  nb.fit(train);
  const double nb_acc =
      nn::accuracy(nb.predict(test.features()), test.labels());

  // --- inference latency ----------------------------------------------------
  const auto time_per_query = [&](auto&& fn, int repeats) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < repeats; ++i) fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(stop - start).count() /
           repeats;
  };
  nn::Matrix probe(1, core::kFeatureDim, 0.3);
  volatile std::uint32_t sink = 0;
  const double ann_us = time_per_query(
      [&] { sink = ann.predict(probe).front(); }, 20000);
  const double knn_us = time_per_query(
      [&] { sink = knn.predict(probe).front(); }, 20000);
  const double nb_us = time_per_query(
      [&] { sink = nb.predict(probe).front(); }, 20000);
  (void)sink;

  std::printf("\n%-10s %16s %14s %16s\n", "model", "accuracy", "memory",
              "inference us");
  std::printf("%-10s %13.1f%% +-%3.1f%% %11zu B %16.3f\n", "ANN",
              ann_cv.mean_accuracy * 100.0,
              ann_cv.stddev_accuracy * 100.0, ann_bytes, ann_us);
  std::printf("%-10s %15.1f%%   %11zu B %16.3f  (k=%zu)\n", "k-NN",
              best_knn_acc * 100.0, knn.memory_bytes(), knn_us, best_k);
  std::printf("%-10s %15.1f%%   %11zu B %16.3f\n", "NaiveBayes",
              nb_acc * 100.0, nb.memory_bytes(), nb_us);
  std::printf("\npaper's point (Section IV.C): comparable accuracy, but the "
              "ANN retains a fixed parameter block while k-NN must keep the "
              "whole training set — the gap grows with dataset size (the "
              "paper trains on 5000 workloads).\n");
  return 0;
}
