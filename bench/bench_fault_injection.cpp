// Fault-injection ablation: two tenants (one write-heavy, one read-heavy)
// share the device while the FaultModel sweeps from disabled to a heavily
// degraded flash (raw bit errors, program failures, erase failures). For
// each level we report per-tenant latency deltas against the fault-free
// run plus the reliability counters — showing how much of each tenant's
// latency is error handling and how the channel-allocation strategy shifts
// who pays for it.
//
// Overrides: requests=N rate=R seed=S (key=value args).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/label_gen.hpp"
#include "sim/fault_model.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

using namespace ssdk;

namespace {

struct FaultLevel {
  const char* name;
  sim::FaultModel model;
};

std::vector<FaultLevel> fault_levels() {
  std::vector<FaultLevel> levels;
  levels.push_back({"off", sim::FaultModel::none()});

  sim::FaultModel low;
  low.read_ber = 1e-3;
  low.program_fail = 1e-4;
  low.erase_fail = 1e-4;
  levels.push_back({"low", low});

  sim::FaultModel medium;
  medium.read_ber = 1e-2;
  medium.read_ber_per_pe = 1e-5;
  medium.program_fail = 1e-3;
  medium.erase_fail = 1e-3;
  levels.push_back({"medium", medium});

  sim::FaultModel high;
  high.read_ber = 5e-2;
  high.read_ber_per_pe = 1e-4;
  high.program_fail = 5e-3;
  high.erase_fail = 5e-3;
  levels.push_back({"high", high});
  return levels;
}

std::vector<sim::IoRequest> make_mix(std::uint64_t requests, double rate,
                                     std::uint64_t seed) {
  trace::SyntheticSpec writer;
  writer.write_fraction = 1.0;
  writer.request_count = requests / 2;
  writer.intensity_rps = rate * 0.5;
  writer.mean_request_pages = 1.0;
  writer.seed = seed;
  trace::SyntheticSpec reader;
  reader.write_fraction = 0.0;
  reader.request_count = requests - writer.request_count;
  reader.intensity_rps = rate * 0.5;
  reader.mean_request_pages = 1.0;
  reader.seed = seed + 1;
  return trace::mix_workloads(std::vector<trace::Workload>{
      trace::generate_synthetic(writer), trace::generate_synthetic(reader)});
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::uint64_t requests = cfg.get_uint("requests", 20'000);
  const double rate = cfg.get_double("rate", 18'000.0);
  const std::uint64_t seed = cfg.get_uint("seed", 1);

  const auto space = core::StrategySpace::for_tenants(2);
  core::LabelGenConfig config;
  ThreadPool pool;

  bench::print_header(
      "Fault-injection ablation: reliability cost per tenant", config.run);
  std::printf("requests=%llu rate=%.0f req/s (1-page requests)\n",
              static_cast<unsigned long long>(requests), rate);

  const auto requests_mix = make_mix(requests, rate, seed);
  const auto features = core::features_of(requests_mix, config.features);
  const auto profiles = features.profiles(2);
  const auto levels = fault_levels();

  // Shared (index 0) vs the most isolated 2-tenant split: the interesting
  // question is whether isolation also isolates the *retry* traffic.
  const std::vector<std::size_t> strategies{0, space.size() - 1};

  for (const std::size_t s : strategies) {
    std::vector<core::RunResult> results(levels.size());
    parallel_for(pool, levels.size(), [&](std::size_t i) {
      core::RunConfig run = config.run;
      run.ssd.faults = levels[i].model;
      results[i] = core::run_with_strategy(requests_mix, space.at(s),
                                           profiles, run);
    });

    std::printf("\nstrategy %s\n", space.at(s).name().c_str());
    std::printf("%-8s %-7s %12s %12s %10s %12s %9s %13s %9s %8s\n", "level",
                "tenant", "read(us)", "write(us)", "delta(%)", "retries",
                "uncorr", "prog-retries", "wait(ms)", "retired");
    const core::RunResult& base = results[0];
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const core::RunResult& r = results[i];
      for (const auto& [tenant, m] : r.per_tenant) {
        if (tenant == sim::kInternalTenant) continue;
        const auto base_it = base.per_tenant.find(tenant);
        const double base_total = base_it != base.per_tenant.end()
                                      ? base_it->second.total_us()
                                      : 0.0;
        const double delta =
            base_total > 0.0
                ? (m.total_us() - base_total) / base_total * 100.0
                : 0.0;
        std::printf(
            "%-8s %-7u %12.1f %12.1f %10.2f %12llu %9llu %13llu %9.2f "
            "%8llu\n",
            levels[i].name, static_cast<unsigned>(tenant), m.avg_read_us(),
            m.avg_write_us(), delta,
            static_cast<unsigned long long>(m.read_retries),
            static_cast<unsigned long long>(m.uncorrectable_reads),
            static_cast<unsigned long long>(m.program_retries),
            static_cast<double>(m.retry_wait_ns) / 1e6,
            static_cast<unsigned long long>(r.counters.retired_blocks));
      }
      std::printf(
          "         device: program_fails=%llu erase_fails=%llu "
          "retired_blocks=%llu rescue_migrations=%llu lost_pages=%llu\n",
          static_cast<unsigned long long>(r.counters.program_fails),
          static_cast<unsigned long long>(r.counters.erase_fails),
          static_cast<unsigned long long>(r.counters.retired_blocks),
          static_cast<unsigned long long>(r.counters.rescue_migrations),
          static_cast<unsigned long long>(r.counters.lost_pages));
    }
  }

  std::printf(
      "\nshape check: latency deltas and retry counts grow monotonically "
      "with the fault level, and the read-heavy tenant absorbs most of the "
      "retry-induced wait.\n");
  return 0;
}
