// Scheduler policy sweep on the adversarial writer-collocation mix
// (DESIGN.md §17).
//
// Two tenants share every channel (Strategy{} — the collocation case the
// paper's allocator exists to avoid): tenant 0 is a light, latency-
// sensitive reader, tenant 1 a heavy sequential writer that saturates the
// device whenever admission is open. With a finite admission window the
// dispatch order is the scheduler's to choose, so the four policies
// produce genuinely different schedules on identical inputs.
//
// For each policy the bench reports total latency, per-tenant slowdown
// against the tenant's isolated baseline (same requests, whole device to
// itself), Jain's fairness index over those slowdowns, and SLO misses
// against the reader's latency target. Two properties are asserted, not
// just recorded (non-zero exit on violation):
//
//   1. WFQ at 4:1 reader weight must improve Jain's index over FIFO.
//   2. WFQ must improve the worst-tenant slowdown over FIFO.
//
// Usage: bench_scheduler [reader_requests=2000] [writer_requests=8000]
//          [window=8] [reader_weight=4] [reader_slo_us=400]
//          [json=BENCH_scheduler.json]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "core/strategy.hpp"
#include "sched/scheduler.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

using namespace ssdk;

namespace {

struct PolicyPoint {
  sched::Policy policy;
  double total_us = 0.0;
  double jain = 0.0;
  double worst_slowdown = 0.0;
  double reader_slowdown = 0.0;
  double writer_slowdown = 0.0;
  std::uint64_t slo_violations = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto reader_requests = cfg.get_uint("reader_requests", 2'000);
  const auto writer_requests = cfg.get_uint("writer_requests", 8'000);
  const auto window =
      static_cast<std::uint32_t>(cfg.get_uint("window", 8));
  const auto reader_weight =
      static_cast<std::uint32_t>(cfg.get_uint("reader_weight", 4));
  const auto reader_slo_us = cfg.get_uint("reader_slo_us", 400);
  const std::string json_path =
      cfg.get_string("json", "BENCH_scheduler.json");

  // The committed adversarial pair: same shape the label-objective test
  // pins, scaled up so the backlog the window creates is long-lived.
  trace::SyntheticSpec reader;
  reader.name = "light_reader";
  reader.write_fraction = 0.05;
  reader.request_count = reader_requests;
  reader.intensity_rps = 3'000.0;
  reader.mean_request_pages = 2.0;
  reader.address_space_pages = 4096;
  reader.zipf_theta = 0.2;
  reader.sequential_fraction = 0.3;
  reader.seed = 11;

  trace::SyntheticSpec writer;
  writer.name = "heavy_writer";
  writer.write_fraction = 0.95;
  writer.request_count = writer_requests;
  writer.intensity_rps = 12'000.0;
  writer.mean_request_pages = 4.0;
  writer.address_space_pages = 8192;
  writer.zipf_theta = 0.2;
  writer.sequential_fraction = 0.6;
  writer.seed = 13;

  const trace::Workload workloads[] = {trace::generate_synthetic(reader),
                                       trace::generate_synthetic(writer)};
  const auto requests = trace::mix_workloads(workloads);

  const double total = static_cast<double>(requests.size());
  const std::vector<core::TenantProfile> profiles = {
      {.id = 0,
       .read_dominated = true,
       .relative_intensity = static_cast<double>(reader_requests) / total},
      {.id = 1,
       .read_dominated = false,
       .relative_intensity = static_cast<double>(writer_requests) / total},
  };
  const core::Strategy collocated{};  // every channel shared: worst case

  core::RunConfig config;
  config.ssd.sched.max_outstanding_requests = window;
  config.ssd.sched.shares.push_back({.tenant = 0,
                                     .weight = reader_weight,
                                     .slo_target_us = reader_slo_us});
  config.ssd.sched.shares.push_back({.tenant = 1, .weight = 1});

  std::printf("scheduler sweep: %zu requests (%llu reader / %llu writer), "
              "window %u, reader weight %u, reader SLO %llu us\n",
              requests.size(),
              static_cast<unsigned long long>(reader_requests),
              static_cast<unsigned long long>(writer_requests), window,
              reader_weight,
              static_cast<unsigned long long>(reader_slo_us));

  // Isolated baselines are policy-independent (isolated_baselines strips
  // the scheduler config): compute once, reuse for every policy's
  // slowdowns.
  const auto baselines =
      core::isolated_baselines(requests, profiles, config);
  if (baselines.size() != profiles.size()) {
    std::fprintf(stderr, "FAIL: %zu of %zu isolated baselines usable\n",
                 baselines.size(), profiles.size());
    return EXIT_FAILURE;
  }

  const sched::Policy policies[] = {
      sched::Policy::kFifo, sched::Policy::kWfq, sched::Policy::kDrr,
      sched::Policy::kWeightedShare};
  std::vector<PolicyPoint> points;
  for (const sched::Policy policy : policies) {
    config.ssd.sched.policy = policy;
    core::RunResult run =
        core::run_with_strategy(requests, collocated, profiles, config);
    if (run.device_full) {
      std::fprintf(stderr, "FAIL: %s run aborted: %s\n",
                   sched::policy_name(policy), run.abort_reason.c_str());
      return EXIT_FAILURE;
    }
    core::apply_fairness(run, baselines);
    PolicyPoint p;
    p.policy = policy;
    p.total_us = run.total_us;
    p.jain = run.jain_index;
    p.worst_slowdown = run.worst_slowdown;
    p.reader_slowdown = run.tenant_slowdown.count(0)
                            ? run.tenant_slowdown.at(0)
                            : 0.0;
    p.writer_slowdown = run.tenant_slowdown.count(1)
                            ? run.tenant_slowdown.at(1)
                            : 0.0;
    p.slo_violations = run.slo_violations;
    std::printf("policy %-14s: total %9.1f us, jain %.4f, "
                "worst slowdown %6.2fx (reader %6.2fx, writer %5.2fx), "
                "%llu SLO misses\n",
                sched::policy_name(policy), p.total_us, p.jain,
                p.worst_slowdown, p.reader_slowdown, p.writer_slowdown,
                static_cast<unsigned long long>(p.slo_violations));
    points.push_back(p);
  }

  const PolicyPoint& fifo = points[0];
  const PolicyPoint& wfq = points[1];
  const double jain_gain = fifo.jain > 0.0 ? wfq.jain / fifo.jain : 0.0;
  const double worst_ratio =
      wfq.worst_slowdown > 0.0 ? fifo.worst_slowdown / wfq.worst_slowdown
                               : 0.0;
  std::printf("wfq/fifo jain gain: %.3fx, fifo/wfq worst-slowdown "
              "ratio: %.3fx\n",
              jain_gain, worst_ratio);

  std::ofstream os = bench::open_bench_json(json_path, "scheduler", 1.0);
  os << "  \"requests\": " << requests.size() << ",\n"
     << "  \"window\": " << window << ",\n"
     << "  \"reader_weight\": " << reader_weight << ",\n"
     << "  \"reader_slo_us\": " << reader_slo_us << ",\n"
     << "  \"policies\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PolicyPoint& p = points[i];
    os << "    {\"policy\": \"" << sched::policy_name(p.policy)
       << "\", \"total_us\": " << p.total_us
       << ", \"jain_index\": " << p.jain
       << ", \"worst_slowdown\": " << p.worst_slowdown
       << ", \"reader_slowdown\": " << p.reader_slowdown
       << ", \"writer_slowdown\": " << p.writer_slowdown
       << ", \"slo_violations\": " << p.slo_violations << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"fifo_jain_index\": " << fifo.jain << ",\n"
     << "  \"wfq_jain_index\": " << wfq.jain << ",\n"
     << "  \"fifo_worst_slowdown\": " << fifo.worst_slowdown << ",\n"
     << "  \"wfq_worst_slowdown\": " << wfq.worst_slowdown << ",\n"
     << "  \"jain_gain_wfq_over_fifo\": " << jain_gain << ",\n"
     << "  \"worst_slowdown_ratio_fifo_over_wfq\": " << worst_ratio << "\n"
     << "}\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (jain_gain <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: wfq did not improve Jain's index over fifo "
                 "(gain %.4f <= 1.0)\n",
                 jain_gain);
    return EXIT_FAILURE;
  }
  if (worst_ratio <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: wfq did not improve worst-tenant slowdown over "
                 "fifo (ratio %.4f <= 1.0)\n",
                 worst_ratio);
    return EXIT_FAILURE;
  }
  return 0;
}
