// Figure 5 reproduction: write, read and total response latency of the
// four Table-IV mixed workloads under Shared, Isolated, SSDKeeper
// (Algorithm 2 online run: collect features -> predict -> re-partition)
// and SSDKeeper with the hybrid page allocator. Prints per-mix normalized
// results and the paper's headline aggregate (Section V.C: SSDKeeper
// improves the overall performance by ~24% on average; hybrid page
// allocation adds ~2.1%).
//
// Shape targets: SSDKeeper tracks the best baseline everywhere; Isolated
// collapses on the skewed Mix1 (paper: -327%); SSDKeeper's win is largest
// on the contended mixes (paper: 29.6% / 43.2% / 27.1% on Mix2-4).
//
// Overrides: duration=S threads=T retrain=0|1 model=PATH window_frac=F.
#include <cstdio>

#include "bench_common.hpp"
#include "core/keeper.hpp"
#include "trace/catalog.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double duration = cfg.get_double("duration", 0.6);
  const double window_frac = cfg.get_double("window_frac", 0.2);
  const auto space = core::StrategySpace::for_tenants(4);
  ThreadPool pool(static_cast<std::size_t>(cfg.get_uint("threads", 0)));

  core::RunConfig baseline;
  bench::print_header(
      "Figure 5: Mix1-4 under Shared / Isolated / SSDKeeper", baseline);

  const auto allocator = bench::obtain_allocator(cfg, space, pool);

  core::KeeperConfig keeper_config;
  keeper_config.collect_window_ns =
      static_cast<Duration>(duration * window_frac * 1e9);
  core::KeeperConfig keeper_no_hybrid = keeper_config;
  keeper_no_hybrid.hybrid_page_allocation = false;

  std::printf("\n%-5s %-10s %12s %12s %12s %11s | %10s %10s\n", "mix",
              "policy", "write us", "read us", "total us", "p99-rd us",
              "vs Shared", "strategy");
  double sum_shared = 0.0, sum_keeper = 0.0, sum_keeper_plain = 0.0,
         sum_isolated = 0.0;
  for (std::uint32_t m = 1; m <= 4; ++m) {
    const auto requests = trace::build_mix(m, duration);
    const auto features = core::features_of(requests);
    const auto profiles = features.profiles(4);

    const auto shared = core::run_with_strategy(requests, space.shared(),
                                                profiles, baseline);
    const auto isolated = core::run_with_strategy(requests, space.isolated(),
                                                  profiles, baseline);
    const auto keeper_plain = core::run_with_keeper(
        requests, allocator, keeper_no_hybrid, baseline.ssd);
    const auto keeper = core::run_with_keeper(requests, allocator,
                                              keeper_config, baseline.ssd);

    const auto row = [&](const char* name, const core::RunResult& r,
                         const char* strategy) {
      std::printf("%-5s %-10s %12.1f %12.1f %12.1f %11.1f | %9.1f%% %10s\n",
                  name[0] == 'M' ? name : "", name[0] == 'M' ? "" : name,
                  r.avg_write_us, r.avg_read_us, r.total_us, r.p99_read_us,
                  (shared.total_us - r.total_us) / shared.total_us * 100.0,
                  strategy);
    };
    std::printf("Mix%u\n", m);
    row("Shared", shared, "Shared");
    row("Isolated", isolated, space.isolated().name().c_str());
    row("SSDKeeper", keeper_plain.run,
        keeper_plain.strategy.name().c_str());
    row("+hybrid", keeper.run, keeper.strategy.name().c_str());

    sum_shared += shared.total_us;
    sum_isolated += isolated.total_us;
    sum_keeper_plain += keeper_plain.run.total_us;
    sum_keeper += keeper.run.total_us;
  }

  std::printf("\naggregate over Mix1-4 (sum of total latencies):\n");
  std::printf("  Shared    %12.1f us\n", sum_shared);
  std::printf("  Isolated  %12.1f us (%.1f%% vs Shared)\n", sum_isolated,
              (sum_shared - sum_isolated) / sum_shared * 100.0);
  std::printf("  SSDKeeper %12.1f us (%.1f%% vs Shared)\n",
              sum_keeper_plain,
              (sum_shared - sum_keeper_plain) / sum_shared * 100.0);
  std::printf("  +hybrid   %12.1f us (%.1f%% vs Shared; hybrid adds "
              "%.1f%%)\n",
              sum_keeper, (sum_shared - sum_keeper) / sum_shared * 100.0,
              (sum_keeper_plain - sum_keeper) / sum_keeper_plain * 100.0);
  std::printf("(paper headline: SSDKeeper +24%% overall, hybrid page "
              "allocation +2.1%%)\n");
  return 0;
}
