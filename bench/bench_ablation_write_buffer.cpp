// Ablation: DRAM write buffer (the paper's Figure-1 "DRAM buffer",
// deliberately absent from its evaluation path).
//
// Runs the Table-IV mixes under Shared with increasing buffer capacities.
// A buffer hides flash program latency behind DRAM writes, which shrinks
// the write-latency differences channel allocation exploits — quantifying
// how sensitive SSDKeeper's opportunity is to this substrate choice.
//
// Overrides: duration=S.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/catalog.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double duration = cfg.get_double("duration", 0.5);

  core::RunConfig base;
  bench::print_header("Ablation: DRAM write buffer (Shared channels)",
                      base);

  const std::uint32_t capacities[] = {0, 1024, 8192};
  std::printf("%-5s", "mix");
  for (const auto cap : capacities) {
    std::printf(" | %6u pages: %9s %9s", cap, "write us", "read us");
  }
  std::printf("\n");

  for (std::uint32_t m = 1; m <= 4; ++m) {
    const auto requests = trace::build_mix(m, duration);
    const auto features = core::features_of(requests);
    const auto profiles = features.profiles(4);
    std::printf("Mix%u ", m);
    for (const auto cap : capacities) {
      core::RunConfig run = base;
      run.ssd.write_buffer.capacity_pages = cap;
      const auto result = core::run_with_strategy(
          requests, core::Strategy{}, profiles, run);
      std::printf(" | %14s %9.1f %9.1f", "", result.avg_write_us,
                  result.avg_read_us);
    }
    std::printf("\n");
  }
  std::printf("\nexpected: write latency collapses toward DRAM latency as "
              "the buffer grows (until eviction pressure bites), while "
              "read latency moves little — shrinking the write-side "
              "contention signal SSDKeeper's allocator feeds on.\n");
  return 0;
}
