// Table V reproduction: measured features of the four Table-IV mixed
// workloads and the channel-allocation strategy SSDKeeper selects for
// each. Also prints the exhaustive ground-truth best strategy so the
// model's choice can be judged.
//
// Paper Table V:
//   Mix1 [3]  [0,1,0,0] [0.08,0.09,0.08,0.75] -> Shared
//   Mix2 [18] [0,1,0,1] [0.21,0.72,0.02,0.05] -> 1:7
//   Mix3 [16] [1,0,0,0] [0.67,0.26,0.03,0.04] -> 5:1:1:1
//   Mix4 [17] [0,1,1,0] [0.65,0.03,0.27,0.05] -> 4:2:1:1
//
// Overrides: duration=S threads=T retrain=0|1 model=PATH.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "trace/catalog.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double duration = cfg.get_double("duration", 0.6);
  const auto space = core::StrategySpace::for_tenants(4);
  ThreadPool pool(static_cast<std::size_t>(cfg.get_uint("threads", 0)));

  core::LabelGenConfig label_config;
  bench::print_header(
      "Table V: mixed-workload features and SSDKeeper's chosen strategy",
      label_config.run);

  const auto allocator = bench::obtain_allocator(cfg, space, pool);

  static const char* kPaperChoice[] = {"Shared", "1:7", "5:1:1:1",
                                       "4:2:1:1"};
  std::printf("\n%-5s %-38s %-10s %-10s %-10s\n", "mix", "features",
              "SSDKeeper", "oracle", "paper");
  for (std::uint32_t m = 1; m <= 4; ++m) {
    const auto requests = trace::build_mix(m, duration);
    const auto sample =
        core::label_workload(requests, space, label_config, &pool);
    const auto chosen = allocator.predict(sample.features);
    std::printf("Mix%u  %-38s %-10s %-10s %-10s\n", m,
                sample.features.describe().c_str(), chosen.name().c_str(),
                space.at(sample.label).name().c_str(), kPaperChoice[m - 1]);
  }
  std::printf("\n'oracle' is the exhaustive-sweep argmin on this substrate; "
              "SSDKeeper's pick should match or near-tie it.\n");
  return 0;
}
