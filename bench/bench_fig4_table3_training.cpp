// Figure 4 + Table III reproduction: strategy-learner training with the
// paper's four optimizer configurations — SGD (lr 0.2), SGD-momentum
// (lr 0.2, m 0.9), Adam-ReLU and Adam-logistic (lr 0.02) — on a dataset of
// labeled mixed workloads produced by exhaustive strategy sweeps
// (Algorithm 1). Prints the training-loss curve (Fig 4a), the test-accuracy
// curve (Fig 4b) and the final loss / accuracy / wall-time table
// (Table III).
//
// Shape targets: all four converge; Adam variants reach lower loss and
// higher accuracy than the SGD variants; Adam-logistic trains slowest but
// scores best (paper Table III: 0.11 loss / 94.5% / longest time).
//
// Overrides: workloads=N requests=M iterations=I threads=T save=0|1.
// Campaign checkpointing: checkpoint=PATH writes progress every
// checkpoint_every=N workloads; resume=1 loads an existing checkpoint and
// labels only the remaining workloads (a checkpoint from a different config
// is refused via its fingerprint). json=PATH records dataset wall-clock,
// samples/s and the Table III results for CI trend tracking.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "snapshot/campaign.hpp"

using namespace ssdk;

namespace {
struct OptimizerSetup {
  const char* label;
  const char* optimizer;
  const char* activation;
};
}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto space = core::StrategySpace::for_tenants(4);
  ThreadPool pool(static_cast<std::size_t>(cfg.get_uint("threads", 0)));

  core::DatasetGenConfig gen;
  gen.workloads = cfg.get_uint("workloads", 400);
  gen.workload_duration_s = cfg.get_double("duration", 0.5);
  gen.requests_per_workload = cfg.get_uint("requests", 0);
  gen.seed = cfg.get_uint("train_seed", 2024);

  bench::print_header(
      "Figure 4 + Table III: strategy-learner training comparison",
      gen.label.run);
  std::printf("dataset: %llu mixed workloads x %zu strategies "
              "(%.2f s of arrivals each), 7:3 train/test split\n",
              static_cast<unsigned long long>(gen.workloads), space.size(),
              gen.workload_duration_s);

  snapshot::CampaignOptions campaign;
  campaign.checkpoint_path = cfg.get_string("checkpoint", "");
  campaign.checkpoint_every = cfg.get_uint("checkpoint_every", 64);
  campaign.resume = cfg.get_bool("resume", false);
  if (!campaign.checkpoint_path.empty()) {
    campaign.on_progress = [](std::uint64_t done, std::uint64_t total) {
      std::printf("checkpoint: %llu/%llu workloads labeled\n",
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total));
    };
  }

  const auto gen_start = std::chrono::steady_clock::now();
  const auto dataset =
      campaign.checkpoint_path.empty() && !campaign.resume
          ? core::generate_dataset(space, gen, pool)
          : snapshot::generate_dataset_resumable(space, gen, pool, campaign);
  const double dataset_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    gen_start)
          .count();
  const double samples_per_s =
      static_cast<double>(dataset.samples.size()) / dataset_wall_s;
  std::printf("dataset wall-clock: %.2f s (%.2f samples/s)\n",
              dataset_wall_s, samples_per_s);

  std::vector<std::uint64_t> wins(space.size(), 0);
  for (const auto label : dataset.data.labels()) ++wins[label];
  std::printf("label distribution:");
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (wins[i]) {
      std::printf(" %s:%llu", space.at(i).name().c_str(),
                  static_cast<unsigned long long>(wins[i]));
    }
  }
  std::printf("\n\n");

  const OptimizerSetup setups[] = {
      {"SGD", "sgd", "logistic"},
      {"SGD-momentum", "sgd-momentum", "logistic"},
      {"Adam-ReLU", "adam", "relu"},
      {"Adam-logistic", "adam", "logistic"},
  };

  const std::size_t iterations = cfg.get_uint("iterations", 200);
  std::vector<core::LearnedModel> results;
  for (const auto& setup : setups) {
    core::LearnerConfig learner;
    learner.optimizer = setup.optimizer;
    learner.activation = setup.activation;
    learner.max_iterations = iterations;
    results.push_back(
        core::train_strategy_learner(dataset.data, space, learner));
  }

  // Figure 4(a): loss curves (sampled every 10 iterations).
  std::printf("Figure 4(a): training loss vs iteration\n%-6s", "iter");
  for (const auto& setup : setups) std::printf(" %14s", setup.label);
  std::printf("\n");
  for (std::size_t it = 0; it < iterations; it += 10) {
    std::printf("%-6zu", it);
    for (const auto& r : results) {
      std::printf(" %14.4f", r.history.train_loss[it]);
    }
    std::printf("\n");
  }

  // Figure 4(b): test-accuracy curves.
  std::printf("\nFigure 4(b): test accuracy vs iteration\n%-6s", "iter");
  for (const auto& setup : setups) std::printf(" %14s", setup.label);
  std::printf("\n");
  for (std::size_t it = 0; it < iterations; it += 10) {
    std::printf("%-6zu", it);
    for (const auto& r : results) {
      std::printf(" %13.1f%%", r.history.test_accuracy[it] * 100.0);
    }
    std::printf("\n");
  }

  // Table III.
  std::printf("\nTable III: final loss, accuracy and training time\n");
  std::printf("%-14s %8s %10s %14s\n", "optimizer", "loss", "accuracy",
              "train-time(ms)");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-14s %8.3f %9.1f%% %14.0f\n", setups[i].label,
                results[i].history.final_loss,
                results[i].history.final_accuracy * 100.0,
                results[i].history.wall_time_ms);
  }
  std::printf("(paper: 0.39/85.6%%, 0.41/88.1%%, 0.21/92.7%%, 0.11/94.5%%; "
              "Adam-logistic slowest)\n");

  // Cache the best model (Adam-logistic) for the downstream benches.
  if (cfg.get_bool("save", true)) {
    const std::string path =
        cfg.get_string("model", bench::kDefaultModelPath);
    results.back().allocator.save(path);
    std::printf("\nsaved Adam-logistic model to %s\n", path.c_str());
  }

  const std::string json_path = cfg.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"fig4_table3_training\",\n"
       << "  \"workloads\": " << dataset.samples.size() << ",\n"
       << "  \"strategies\": " << space.size() << ",\n"
       << "  \"dataset_wall_s\": " << dataset_wall_s << ",\n"
       << "  \"samples_per_s\": " << samples_per_s << ",\n"
       << "  \"resumed\": " << (campaign.resume ? "true" : "false") << ",\n"
       << "  \"optimizers\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      os << "    {\"name\": \"" << setups[i].label << "\", \"loss\": "
         << results[i].history.final_loss << ", \"accuracy\": "
         << results[i].history.final_accuracy << ", \"train_ms\": "
         << results[i].history.wall_time_ms << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
