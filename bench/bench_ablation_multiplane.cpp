// Ablation: flash command-set / parallelism model (DESIGN.md §7).
//
// The default device uses SSDSim's basic command set — the channel bus is
// held for a write's transfer AND program, and a chip runs one array
// operation at a time (the paper's substrate). Advanced commands relax
// both: pipelined buses release the channel after the transfer, and
// multiplane execution runs a chip's planes concurrently. This bench
// quantifies how those choices change the value of channel partitioning:
// the more intra-channel parallelism the device has, the better Shared
// absorbs bursts and the smaller the partitioning wins SSDKeeper exploits.
//
// Overrides: duration=S threads=T.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "trace/catalog.hpp"
#include "util/thread_pool.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double duration = cfg.get_double("duration", 0.5);
  const auto space = core::StrategySpace::for_tenants(4);
  ThreadPool pool(static_cast<std::size_t>(cfg.get_uint("threads", 0)));

  core::LabelGenConfig basic;       // held bus, chip-serial (default)
  core::LabelGenConfig pipelined;   // bus released after transfer
  pipelined.run.ssd.pipelined_writes = true;
  core::LabelGenConfig advanced;    // pipelined + multiplane
  advanced.run.ssd.pipelined_writes = true;
  advanced.run.ssd.multiplane_program = true;

  bench::print_header(
      "Ablation: basic vs pipelined vs multiplane command sets", basic.run);

  const core::LabelGenConfig* configs[] = {&basic, &pipelined, &advanced};
  const char* names[] = {"basic", "pipelined", "multiplane"};

  std::printf("%-5s", "mix");
  for (const char* n : names) std::printf(" | %-10s %12s %9s", n, "best us",
                                          "vs Shared");
  std::printf("\n");
  for (std::uint32_t m = 1; m <= 4; ++m) {
    const auto requests = trace::build_mix(m, duration);
    std::printf("Mix%u ", m);
    for (std::size_t c = 0; c < 3; ++c) {
      const auto sample =
          core::label_workload(requests, space, *configs[c], &pool);
      const double shared = sample.strategy_total_us[0];
      const double best = sample.strategy_total_us[sample.label];
      std::printf(" | %-10s %12.1f %8.1f%%",
                  space.at(sample.label).name().c_str(), best,
                  (shared - best) / shared * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\nexpected: partitioning gains over Shared shrink as the "
              "command set adds intra-channel parallelism (pipelined, then "
              "multiplane) — the substrate choice matters for the paper's "
              "conclusions.\n");
  return 0;
}
