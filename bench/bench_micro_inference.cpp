// Microbenchmarks (google-benchmark) for the components whose overhead the
// paper argues is negligible (Section IV.D): channel-allocator inference
// (one forward pass of the 9->64->42 network), feature collection per
// request, and raw simulator event throughput.
#include <benchmark/benchmark.h>

#include "core/allocator.hpp"
#include "core/features.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "ssd/ssd.hpp"
#include "trace/synthetic.hpp"

using namespace ssdk;

namespace {

core::ChannelAllocator make_allocator() {
  const auto space = core::StrategySpace::for_tenants(4);
  nn::Mlp model({core::kFeatureDim, 64, space.size()},
                nn::Activation::kLogistic, 7);
  nn::StandardScaler scaler;
  scaler.set_parameters(std::vector<double>(core::kFeatureDim, 0.5),
                        std::vector<double>(core::kFeatureDim, 1.0));
  return core::ChannelAllocator(std::move(model), std::move(scaler), space);
}

void BM_AllocatorInference(benchmark::State& state) {
  const auto allocator = make_allocator();
  core::MixFeatures f;
  f.intensity_level = 11;
  f.read_dominated = {0, 1, 0, 1};
  f.proportion = {0.4, 0.3, 0.2, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.predict_index(f));
  }
  state.counters["multiplications"] = static_cast<double>(
      allocator.multiplications_per_inference());
  state.counters["parameter_bytes"] =
      static_cast<double>(allocator.parameter_bytes());
}
BENCHMARK(BM_AllocatorInference);

void BM_FeatureObservation(benchmark::State& state) {
  core::FeaturesCollector collector;
  sim::IoRequest r;
  r.tenant = 2;
  r.type = sim::OpType::kRead;
  SimTime t = 0;
  for (auto _ : state) {
    r.arrival = t += 1000;
    collector.observe(r);
  }
  benchmark::DoNotOptimize(collector.observed());
}
BENCHMARK(BM_FeatureObservation);

void BM_SimulatorThroughput(benchmark::State& state) {
  // Page ops simulated per second of wall time (drives dataset-generation
  // cost). One batch = a 2000-request mixed burst.
  trace::SyntheticSpec spec;
  spec.request_count = 2000;
  spec.intensity_rps = 30'000.0;
  spec.write_fraction = 0.5;
  spec.mean_request_pages = 2.0;
  spec.seed = 3;
  const auto workload = trace::generate_synthetic(spec);
  std::uint64_t pages = 0;
  for (auto _ : state) {
    ssd::Ssd device;
    std::uint64_t id = 0;
    for (const auto& rec : workload) {
      sim::IoRequest r;
      r.id = id++;
      r.tenant = 0;
      r.type = rec.type;
      r.lpn = rec.lpn;
      r.page_count = rec.pages;
      r.arrival = rec.arrival;
      device.submit(r);
    }
    device.run_to_completion();
    pages += device.metrics().counters().page_ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pages));
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void BM_TrainingEpoch(benchmark::State& state) {
  // One epoch of the 9->64->42 model on 3500 samples (paper: 5000 x 0.7),
  // the unit of Figure 4's x-axis.
  Rng rng(5);
  nn::Matrix x(3500, core::kFeatureDim);
  std::vector<std::uint32_t> y(3500);
  for (std::size_t i = 0; i < 3500; ++i) {
    for (std::size_t c = 0; c < core::kFeatureDim; ++c) {
      x(i, c) = rng.next_double();
    }
    y[i] = static_cast<std::uint32_t>(rng.next_below(42));
  }
  nn::Dataset data(std::move(x), std::move(y));
  nn::Mlp model({core::kFeatureDim, 64, 42}, nn::Activation::kLogistic, 9);
  auto opt = nn::make_optimizer("adam");
  for (auto _ : state) {
    for (std::size_t begin = 0; begin < data.size(); begin += 64) {
      const std::size_t end = std::min(begin + 64, data.size());
      auto [bx, by] = data.batch(begin, end);
      model.zero_grad();
      benchmark::DoNotOptimize(model.train_loss_and_grad(bx, by));
      opt->step(model);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_TrainingEpoch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
