// Table II reproduction: characteristics of the evaluated I/O workloads.
// The catalog synthesizes MSR-Cambridge stand-ins; this bench generates
// each and verifies the measured write/read ratio against the table and
// prints relative request counts (the paper's absolute counts are trace-
// length artifacts; what matters downstream is the ratio structure).
//
// Overrides: duration=SECONDS seed=S.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/catalog.hpp"
#include "trace/workload_stats.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double duration = cfg.get_double("duration", 1.0);
  const std::uint64_t seed = cfg.get_uint("seed", 0);

  core::RunConfig run;
  bench::print_header("Table II: characteristics of the evaluated workloads",
                      run);

  // Paper Table II write ratios.
  const std::vector<std::pair<std::string, double>> paper{
      {"mds_0", 0.88}, {"mds_1", 0.07},  {"rsrch_0", 0.91},
      {"prxy_0", 0.97}, {"src_1", 0.05}, {"web_2", 0.01},
  };

  std::printf("%-9s %9s %9s %11s %11s %12s %9s\n", "workload", "write%",
              "paper%", "requests", "rel-count", "mean-pages", "req/s");
  double base_count = 0.0;
  for (const auto& [name, paper_ratio] : paper) {
    const auto spec = trace::catalog_spec(name, duration, seed);
    const auto stats = trace::compute_stats(trace::generate_synthetic(spec));
    if (base_count == 0.0) base_count = static_cast<double>(stats.requests);
    std::printf("%-9s %8.1f%% %8.1f%% %11llu %11.2f %12.2f %9.0f\n",
                name.c_str(), stats.write_ratio * 100.0,
                paper_ratio * 100.0,
                static_cast<unsigned long long>(stats.requests),
                static_cast<double>(stats.requests) / base_count,
                stats.mean_pages, stats.intensity_rps);
  }
  std::printf("\npaper relative counts (vs mds_0): mds_1 1.35, rsrch_0 "
              "1.18, prxy_0 10.3, src_1 37.8, web_2 4.3\n");
  std::printf("(catalog preserves the ordering and the heavy hitters; "
              "absolute counts depend on the generation window)\n");
  return 0;
}
