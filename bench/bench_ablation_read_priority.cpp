// Ablation: bus read priority on vs off (DESIGN.md §7).
//
// Read priority is the mechanism behind the paper's Figure 2(a) (Shared
// write latency inflated at low write proportions). This bench repeats a
// condensed Figure-2 sweep with the arbiter in priority and in fair
// (alternating) mode and reports how each class's latency moves.
//
// Overrides: requests=N rate=R seed=S.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/mixer.hpp"
#include "trace/synthetic.hpp"

using namespace ssdk;

namespace {
std::vector<sim::IoRequest> two_tenant_mix(double write_prop,
                                           std::uint64_t requests,
                                           double rate, std::uint64_t seed) {
  trace::SyntheticSpec writer;
  writer.write_fraction = 1.0;
  writer.request_count = static_cast<std::uint64_t>(
      write_prop * static_cast<double>(requests));
  writer.intensity_rps = rate * write_prop;
  writer.mean_request_pages = 1.0;
  writer.seed = seed;
  trace::SyntheticSpec reader;
  reader.write_fraction = 0.0;
  reader.request_count = requests - writer.request_count;
  reader.intensity_rps = rate * (1.0 - write_prop);
  reader.mean_request_pages = 1.0;
  reader.seed = seed + 1;
  return trace::mix_workloads(std::vector<trace::Workload>{
      trace::generate_synthetic(writer), trace::generate_synthetic(reader)});
}
}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::uint64_t requests = cfg.get_uint("requests", 40'000);
  const double rate = cfg.get_double("rate", 18'000.0);
  const std::uint64_t seed = cfg.get_uint("seed", 1);

  core::LabelGenConfig config;
  bench::print_header("Ablation: bus read priority (Shared allocation)",
                      config.run);

  std::printf("%-8s | %12s %12s | %12s %12s | %9s %9s\n", "wr-prop",
              "rd-prio: wr", "rd", "fair: wr", "rd", "wr ratio",
              "rd ratio");
  for (int wp = 1; wp <= 9; wp += 2) {
    const double write_prop = wp / 10.0;
    const auto mix = two_tenant_mix(write_prop, requests, rate, seed);
    const auto features = core::features_of(mix, config.features);
    const auto profiles = features.profiles(2);

    core::RunConfig prio = config.run;
    prio.ssd.read_priority = true;
    core::RunConfig fair = config.run;
    fair.ssd.read_priority = false;

    const auto with_prio =
        core::run_with_strategy(mix, core::Strategy{}, profiles, prio);
    const auto without =
        core::run_with_strategy(mix, core::Strategy{}, profiles, fair);
    std::printf("%-8.1f | %12.1f %12.1f | %12.1f %12.1f | %9.3f %9.3f\n",
                write_prop, with_prio.avg_write_us, with_prio.avg_read_us,
                without.avg_write_us, without.avg_read_us,
                with_prio.avg_write_us / without.avg_write_us,
                with_prio.avg_read_us / without.avg_read_us);
  }
  std::printf("\nexpected: wr ratio >= 1 (writes pay for read priority), "
              "rd ratio <= 1 (reads gain), strongest at low write "
              "proportions.\n");
  return 0;
}
