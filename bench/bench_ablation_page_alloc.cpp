// Ablation: page-allocation policy (DESIGN.md §7, paper Section IV.E).
//
// Runs the Table-IV mixes under Shared channels with three page-allocation
// configurations: all-static (the traditional FTL), all-dynamic, and the
// paper's hybrid (static for read-dominated tenants, dynamic for
// write-dominated ones). The paper reports hybrid adding ~2.1% on average.
//
// Overrides: duration=S.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/catalog.hpp"

using namespace ssdk;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double duration = cfg.get_double("duration", 0.6);

  core::RunConfig base;
  bench::print_header("Ablation: page-allocation policy (Shared channels)",
                      base);

  std::printf("%-5s %14s %14s %14s | %9s %9s\n", "mix", "static us",
              "dynamic us", "hybrid us", "dyn gain", "hyb gain");
  double sum_static = 0.0, sum_dynamic = 0.0, sum_hybrid = 0.0;
  for (std::uint32_t m = 1; m <= 4; ++m) {
    const auto requests = trace::build_mix(m, duration);
    const auto features = core::features_of(requests);
    const auto profiles = features.profiles(4);

    core::RunConfig all_static = base;  // hybrid off = static for all
    const auto s = core::run_with_strategy(requests, core::Strategy{},
                                           profiles, all_static);

    // All-dynamic: flip every tenant to write-dominated for the purpose
    // of the hybrid switch by configuring the device directly.
    ssd::Ssd dyn_device(base.ssd);
    for (const auto& p : profiles) {
      dyn_device.set_tenant_alloc_mode(p.id, ftl::AllocMode::kDynamic);
    }
    dyn_device.submit(requests);
    dyn_device.run_to_completion();
    const auto d = core::summarize(dyn_device);

    core::RunConfig hybrid = base;
    hybrid.hybrid_page_allocation = true;
    const auto h = core::run_with_strategy(requests, core::Strategy{},
                                           profiles, hybrid);

    std::printf("Mix%u  %14.1f %14.1f %14.1f | %8.1f%% %8.1f%%\n", m,
                s.total_us, d.total_us, h.total_us,
                (s.total_us - d.total_us) / s.total_us * 100.0,
                (s.total_us - h.total_us) / s.total_us * 100.0);
    sum_static += s.total_us;
    sum_dynamic += d.total_us;
    sum_hybrid += h.total_us;
  }
  std::printf("\naggregate: dynamic %+.1f%%, hybrid %+.1f%% vs all-static "
              "(paper: hybrid ~+2.1%%)\n",
              (sum_static - sum_dynamic) / sum_static * 100.0,
              (sum_static - sum_hybrid) / sum_static * 100.0);
  return 0;
}
