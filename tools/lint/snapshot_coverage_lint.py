#!/usr/bin/env python3
"""Snapshot-coverage lint for the SSDKeeper SSDKSNP1 serializers.

The snapshot layer's contract is *completeness*: save_state must write and
load_state must read every field that defines device behaviour, or a
restored device silently diverges from the original (the exact bug class
the corruption-seeding tests catch only after the fact, one field at a
time). This lint closes the loop at review time: it parses every
snapshotted type, collects the fields its save/load serializers actually
touch, and reports any member that neither serializer mentions.

Model
-----
A *serializer* is either

  - a member function pair ``save_*`` / ``load_*`` on a class, taking a
    ``snapshot::StateWriter&`` / ``StateReader&`` (e.g. ``Ssd::save_state``,
    ``SchedulerBase::save_header``), or
  - a free function pair ``save_X(StateWriter&, const T&)`` /
    ``load_X(StateReader&, T&)`` whose subject is the non-archive
    parameter's type (e.g. ``save_options`` over ``SsdOptions``).

For each pair, the lint gathers *candidate types*: the subject type
itself, every known type whose name appears in either body (element
structs serialized in ranged-for loops: ``for (const PageOp& op : ...)``)
and, transitively, the types of covered members (``rs.req.id`` pulls
``sim::IoRequest`` in through ``RequestState::req``). Each candidate's
members must then appear — as a whole-word token, comments and strings
stripped — in both the save text and the load text of some pair that
reaches the type. Coverage is unioned across pairs: a field written by a
parent serializer on the type's behalf counts.

Findings (rule ids):

  missing-save      member never mentioned in any save body reaching it
  missing-load      member never mentioned in any load body reaching it
  asymmetric-pair   a type has save_* serializers but no load_* (or the
                    reverse) — nothing can ever restore what was written
  unjustified-skip  a skip directive with no reason
  stale-skip        a skip naming a member that IS fully serialized
  unknown-skip      a skip naming a member no type in scope declares
  bad-directive     an ssdk-snap: comment that parses as neither skip,
                    ignore-type, nor ignore-file

Suppressions
------------
Next to the member (inside the type definition) or inside/above either
serializer body::

    // ssdk-snap: skip(<member>): <reason>

The reason is mandatory. A type that must never be treated as snapshot
payload (serialization machinery, derived caches) opts out at its
definition::

    // ssdk-snap: ignore-type(<TypeName>): <reason>

Backends
--------
``--backend=internal`` (default) uses the built-in single-pass C++
surface parser — no dependencies, deterministic, what the self-test pins.
``--backend=libclang`` refines member extraction through python3-clang
when available (CI installs it); type member lists come from the real
AST, everything else is shared. ``--backend=auto`` tries libclang and
falls back with a notice.

Exit status: 0 = clean, 1 = findings, 2 = usage/harness error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

# Every directory that defines snapshotted state or serializers.
DEFAULT_SCAN_DIRS = ["src/sim", "src/ssd", "src/sched", "src/ftl",
                     "src/core", "src/snapshot", "src/fleet", "src/util"]

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

RULES = ("missing-save", "missing-load", "asymmetric-pair",
         "unjustified-skip", "stale-skip", "unknown-skip", "bad-directive")

SKIP_RE = re.compile(
    r"//\s*ssdk-snap:\s*skip\(([A-Za-z_]\w*)\)(?::\s*(.*\S))?\s*$")
IGNORE_TYPE_RE = re.compile(
    r"//\s*ssdk-snap:\s*ignore-type\(([A-Za-z_]\w*)\)(?::\s*(.*\S))?\s*$")
IGNORE_FILE_RE = re.compile(r"//\s*ssdk-snap:\s*ignore-file(?::\s*(.*\S))?\s*$")
ANY_DIRECTIVE_RE = re.compile(r"//\s*ssdk-snap:")

RESERVED_WORDS = {
    "const", "constexpr", "static", "using", "typedef", "friend", "public",
    "private", "protected", "template", "typename", "explicit", "operator",
    "return", "virtual", "override", "final", "default", "delete", "enum",
    "struct", "class", "namespace", "if", "for", "while", "switch", "case",
    "else", "do", "sizeof", "noexcept", "mutable", "volatile", "inline",
    "extern", "auto", "void", "bool", "int", "char", "unsigned", "signed",
    "long", "short", "float", "double",
}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        try:
            shown = self.path.relative_to(REPO_ROOT)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out //, /* */ comments and string/char literals, preserving
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
            continue
        if c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Member:
    def __init__(self, name: str, type_text: str, line: int):
        self.name = name
        self.type_text = type_text
        self.line = line


class TypeInfo:
    def __init__(self, name: str, path: Path, start_line: int):
        self.name = name
        self.path = path
        self.start_line = start_line
        self.end_line = start_line
        self.members: list[Member] = []


class Serializer:
    """One save_*/load_* function: who it serializes and its body text."""

    def __init__(self, role: str, fn_name: str, subject: str | None,
                 path: Path, head_line: int):
        self.role = role            # "save" | "load"
        self.fn_name = fn_name
        self.subject = subject      # bare type name the pair is keyed on
        self.path = path
        self.head_line = head_line
        self.end_line = head_line
        self.body = ""


def _strip_annotations(stmt: str) -> str:
    stmt = re.sub(r"\[\[[^\]]*\]\]", " ", stmt)
    stmt = re.sub(r"\bSSDK_[A-Z_]+\s*\([^()]*\)", " ", stmt)
    stmt = re.sub(r"\bSSDK_[A-Z_]+\b", " ", stmt)
    stmt = re.sub(r"\balignas\s*\([^()]*\)", " ", stmt)
    stmt = re.sub(r"^(?:\s*(?:public|private|protected)\s*:)+", " ", stmt)
    return stmt.strip()


def _paren_outside_angles(text: str) -> bool:
    depth = 0
    for c in text:
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif c == "(" and depth == 0:
            return True
    return False


MEMBER_RE = re.compile(
    r"^(?P<type>[A-Za-z_][\w:<>,\s.*&\[\]()]*?[\s>&*])\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:=.*)?$", re.S)

TYPE_HEAD_RE = re.compile(r"^(?:template\s*<.*>\s*)?(?:struct|class)\b", re.S)
ENUM_HEAD_RE = re.compile(r"^(?:template\s*<.*>\s*)?enum\b", re.S)
NS_HEAD_RE = re.compile(r"^(?:inline\s+)?namespace\b", re.S)

SER_SIG_RE = re.compile(
    r"((?:[A-Za-z_]\w*::)*)((?:save|load)_\w+)\s*\(")


def _parse_member(stmt: str, line: int, ty: TypeInfo) -> None:
    stmt = _strip_annotations(stmt)
    first = re.match(r"[A-Za-z_~]\w*", stmt)
    if not first:
        return
    if first.group(0) in ("using", "typedef", "friend", "static",
                          "constexpr", "template", "explicit", "operator",
                          "enum", "struct", "class", "virtual", "return",
                          "namespace"):
        return
    if _paren_outside_angles(stmt):
        return  # function declaration
    m = MEMBER_RE.match(stmt)
    if not m:
        return
    name = m.group("name")
    if name in RESERVED_WORDS:
        return
    ty.members.append(Member(name, m.group("type").strip(), line))


def _split_params(params: str) -> list[str]:
    parts, depth, cur = [], 0, []
    for c in params:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


def _subject_from_params(params: str) -> str | None:
    """Bare type name of the first parameter that is not the archive."""
    for p in _split_params(params):
        if "StateWriter" in p or "StateReader" in p:
            continue
        p = re.sub(r"<[^<>]*>", "", p)          # drop template args
        p = p.replace("const", " ").replace("&", " ").replace("*", " ")
        idents = [t for t in re.findall(r"[A-Za-z_]\w*", p)
                  if t not in RESERVED_WORDS and t != "std"]
        if not idents:
            continue
        # "sim::Geometry geom" → the param name is last, the type's bare
        # name is the identifier before it (or the only one).
        bare = idents[-2] if len(idents) >= 2 else idents[0]
        return bare.split("::")[-1]
    return None


class _Frame:
    def __init__(self, kind: str, data=None):
        self.kind = kind      # "type" | "ns" | "func" | "skip"
        self.data = data
        self.depth = 1
        self.body_start = 0
        self.restore: str | None = None


def _blank_preprocessor_lines(text: str) -> str:
    """Blank #include/#define/#if... lines (and their backslash
    continuations) so they never pollute statement buffers."""
    out = []
    blanking = False
    for ln in text.split("\n"):
        if blanking or ln.lstrip().startswith("#"):
            blanking = ln.rstrip().endswith("\\")
            out.append("")
        else:
            blanking = False
            out.append(ln)
    return "\n".join(out)


def parse_file(path: Path, text: str,
               types: dict[str, list[TypeInfo]],
               serializers: list[Serializer]) -> None:
    """Single pass over comment/string-stripped text: record every
    struct/class member list and every serializer body."""
    s = _blank_preprocessor_lines(strip_comments_and_strings(text))
    line = 1
    stack: list[_Frame] = []
    buf: list[str] = []
    stmt_line = 1

    def top() -> _Frame | None:
        return stack[-1] if stack else None

    def enclosing_type() -> TypeInfo | None:
        for f in reversed(stack):
            if f.kind == "type" and f.data is not None:
                return f.data
        return None

    i, n = 0, len(s)
    while i < n:
        c = s[i]
        if c == "\n":
            line += 1
            if not "".join(buf).strip():
                stmt_line = line
        t = top()
        if t is not None and t.kind in ("func", "skip"):
            if c == "{":
                t.depth += 1
            elif c == "}":
                t.depth -= 1
                if t.depth == 0:
                    if t.kind == "func" and isinstance(t.data, Serializer):
                        t.data.body = s[t.body_start:i]
                        t.data.end_line = line
                        serializers.append(t.data)
                    stack.pop()
                    if t.restore is not None:
                        buf = list(t.restore)
                    else:
                        buf = []
                        stmt_line = line
            i += 1
            continue
        if c == "{":
            head = _strip_annotations("".join(buf).strip())
            frame = _classify(head, path, stmt_line, enclosing_type())
            if frame.kind == "skip" and frame.restore is None:
                # brace-init inside a declaration: keep the statement text
                # so the terminating ';' still parses the member.
                frame.restore = "".join(buf)
            frame.body_start = i + 1
            stack.append(frame)
            buf = []
            stmt_line = line
        elif c == "}":
            if t is not None:
                stack.pop()
                if t.kind == "type" and t.data is not None:
                    t.data.end_line = line
                    types.setdefault(t.data.name, []).append(t.data)
            buf = []
            stmt_line = line
        elif c == ";":
            stmt = "".join(buf).strip()
            buf = []
            if stmt and t is not None and t.kind == "type" \
                    and t.data is not None:
                _parse_member(stmt, stmt_line, t.data)
            stmt_line = line
        else:
            buf.append(c)
        i += 1


def _classify(head: str, path: Path, line: int,
              enclosing: TypeInfo | None) -> _Frame:
    if ENUM_HEAD_RE.match(head):
        f = _Frame("skip")
        f.restore = ""  # enum ends with };  — nothing to keep
        return f
    if TYPE_HEAD_RE.match(head):
        part = re.split(r"(?<!:):(?!:)", head, maxsplit=1)[0]
        idents = re.findall(r"[A-Za-z_]\w*", part)
        while idents and idents[-1] in ("final",):
            idents.pop()
        name = idents[-1] if idents else ""
        if name in ("struct", "class") or not name:
            return _Frame("type", None)  # anonymous — recurse, record nothing
        return _Frame("type", TypeInfo(name, path, line))
    if NS_HEAD_RE.match(head):
        return _Frame("ns")
    if "(" in head:
        ser = _serializer_from_head(head, path, line, enclosing)
        if ser is not None:
            f = _Frame("func", ser)
        else:
            f = _Frame("func")
        f.restore = ""
        return f
    # brace-init of a declaration, lambda body, array initializer, ...
    return _Frame("skip")


def _serializer_from_head(head: str, path: Path, line: int,
                          enclosing: TypeInfo | None) -> Serializer | None:
    m = SER_SIG_RE.search(head)
    if not m:
        return None
    qualifier, fn_name = m.group(1), m.group(2)
    # Balanced-paren parameter extraction from the matched '('.
    start = m.end() - 1
    depth, j = 0, start
    while j < len(head):
        if head[j] == "(":
            depth += 1
        elif head[j] == ")":
            depth -= 1
            if depth == 0:
                break
        j += 1
    params = head[start + 1:j]
    role = "save" if fn_name.startswith("save_") else "load"
    wants = "StateWriter" if role == "save" else "StateReader"
    if wants not in params:
        return None
    if qualifier:
        subject = qualifier.rstrip(":").split("::")[-1]
    elif enclosing is not None:
        subject = enclosing.name
    else:
        subject = _subject_from_params(params)
        if subject is None:
            # Loaders often return the subject by value:
            #   SsdOptions load_options(StateReader& r)
            pre = head[:m.start()]
            idents = [t for t in re.findall(r"[A-Za-z_]\w*", pre)
                      if t not in RESERVED_WORDS and t != "std"
                      and not t.startswith("SSDK_")]
            if idents:
                subject = idents[-1]
    if subject is None:
        return None
    return Serializer(role, fn_name, subject, path, line)


# --------------------------------------------------------------------------
# libclang backend (optional refinement of member extraction)

def refine_types_with_libclang(files: list[Path],
                               types: dict[str, list[TypeInfo]],
                               strict: bool) -> bool:
    try:
        import clang.cindex as ci
    except ImportError:
        if strict:
            print("snapshot_coverage_lint: --backend=libclang requested "
                  "but python3-clang is not importable", file=sys.stderr)
        return False
    try:
        index = ci.Index.create()
    except Exception as e:  # libclang.so missing / version mismatch
        if strict:
            print(f"snapshot_coverage_lint: libclang unavailable: {e}",
                  file=sys.stderr)
        return False
    args = ["-x", "c++", "-std=c++20", f"-I{REPO_ROOT}/src"]
    refined = 0
    for path in files:
        try:
            tu = index.parse(str(path), args=args)
        except Exception:
            continue
        if tu is None:
            continue
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in (ci.CursorKind.STRUCT_DECL,
                                   ci.CursorKind.CLASS_DECL):
                continue
            if not cursor.is_definition() or not cursor.spelling:
                continue
            loc = cursor.location
            if loc.file is None or Path(loc.file.name) != path:
                continue
            fields = [(c.spelling, c.type.spelling, c.location.line)
                      for c in cursor.get_children()
                      if c.kind == ci.CursorKind.FIELD_DECL]
            for ti in types.get(cursor.spelling, []):
                if ti.path != path:
                    continue
                if abs(ti.start_line - cursor.extent.start.line) > 2:
                    continue
                ti.members = [Member(n, t, ln) for n, t, ln in fields]
                refined += 1
    if refined:
        print(f"snapshot_coverage_lint: libclang refined {refined} "
              "type definition(s)")
    return True


# --------------------------------------------------------------------------
# Directive collection

class SkipDirective:
    def __init__(self, path: Path, line: int, member: str,
                 reason: str | None):
        self.path = path
        self.line = line
        self.member = member
        self.reason = reason
        self.used = False
        self.stale_hit = False


def collect_directives(path: Path, raw_lines: list[str],
                       skips: list[SkipDirective],
                       ignored_types: set[str],
                       findings: list[Finding]) -> bool:
    """Parse ssdk-snap directives from the raw (uncommented) source.
    Returns True if the whole file opts out via ignore-file."""
    ignore_file = False
    for idx, raw in enumerate(raw_lines):
        if not ANY_DIRECTIVE_RE.search(raw):
            continue
        m = SKIP_RE.search(raw)
        if m:
            if not m.group(2):
                findings.append(Finding(
                    path, idx + 1, "unjustified-skip",
                    f"skip({m.group(1)}) without a reason — say why this "
                    "field is safe to leave out of the snapshot"))
            skips.append(SkipDirective(path, idx + 1, m.group(1),
                                       m.group(2)))
            continue
        m = IGNORE_TYPE_RE.search(raw)
        if m:
            if not m.group(2):
                findings.append(Finding(
                    path, idx + 1, "unjustified-skip",
                    f"ignore-type({m.group(1)}) without a reason"))
            ignored_types.add(m.group(1))
            continue
        if IGNORE_FILE_RE.search(raw):
            ignore_file = True
            continue
        findings.append(Finding(
            path, idx + 1, "bad-directive",
            "unparseable ssdk-snap directive — expected "
            "skip(<member>): <reason>, ignore-type(<Type>): <reason>, "
            "or ignore-file"))
    return ignore_file


# --------------------------------------------------------------------------
# Coverage analysis

def _word_in(name: str, text: str) -> bool:
    return re.search(r"\b" + re.escape(name) + r"\b", text) is not None


def _member_inner_types(type_text: str,
                        types: dict[str, list[TypeInfo]]) -> list[str]:
    return [t for t in re.findall(r"[A-Za-z_]\w*", type_text)
            if t in types and t not in RESERVED_WORDS]


def analyze(types: dict[str, list[TypeInfo]],
            serializers: list[Serializer],
            skips: list[SkipDirective],
            ignored_types: set[str]) -> list[Finding]:
    findings: list[Finding] = []

    # Group serializers into pairs keyed by subject type.
    groups: dict[str, dict[str, list[Serializer]]] = {}
    for ser in serializers:
        if ser.subject is None or ser.subject in ignored_types:
            continue
        groups.setdefault(ser.subject, {}).setdefault(ser.role, []) \
              .append(ser)

    for subject, roles in sorted(groups.items()):
        if "save" not in roles or "load" not in roles:
            present = roles.get("save", roles.get("load", []))[0]
            missing = "load" if "save" in roles else "save"
            findings.append(Finding(
                present.path, present.head_line, "asymmetric-pair",
                f"{subject} has {present.role}_* serializers but no "
                f"{missing}_* counterpart — snapshots of it cannot "
                "round-trip"))

    # Per-definition union coverage across every pair that reaches it.
    # Keyed by TypeInfo identity so two same-named types in different
    # files (the fleet's TenantState vs the scheduler's) stay separate.
    coverage: dict[TypeInfo, dict[str, tuple[bool, bool]]] = {}
    reach: dict[TypeInfo, list[str]] = {}
    reached_names: dict[str, set[str]] = {}  # type name -> subjects

    def resolve_defs(name: str, pair_paths: set[Path]) -> list[TypeInfo]:
        """Definitions a pair plausibly refers to: when a same-named type
        is defined in one of the pair's own files, that local definition
        shadows the others (anonymous-namespace idiom)."""
        defs = types.get(name, [])
        local = [ti for ti in defs if ti.path in pair_paths]
        return local if local else defs

    for subject, roles in groups.items():
        if "save" not in roles or "load" not in roles:
            continue
        save_text = "\n".join(s.body for s in roles["save"])
        load_text = "\n".join(s.body for s in roles["load"])
        both_text = save_text + "\n" + load_text
        pair_paths = {s.path for s in roles["save"] + roles["load"]}

        candidates: list[str] = []
        seen: set[str] = set()

        def add_candidate(name: str) -> None:
            if name in seen or name in ignored_types or name not in types:
                return
            seen.add(name)
            candidates.append(name)

        add_candidate(subject)
        for name in types:
            if name in ignored_types or name == subject:
                continue
            if _word_in(name, both_text):
                add_candidate(name)

        # Transitive: a covered member of a candidate whose declared type
        # is a known struct pulls that struct in (rs.req.id style chains).
        qi = 0
        while qi < len(candidates):
            tname = candidates[qi]
            qi += 1
            for ti in resolve_defs(tname, pair_paths):
                for mem in ti.members:
                    if not (_word_in(mem.name, save_text)
                            and _word_in(mem.name, load_text)):
                        continue
                    for inner in _member_inner_types(mem.type_text, types):
                        add_candidate(inner)

        for tname in candidates:
            reached_names.setdefault(tname, set()).add(subject)
            for ti in resolve_defs(tname, pair_paths):
                per_def = coverage.setdefault(ti, {})
                reach.setdefault(ti, []).append(subject)
                for mem in ti.members:
                    prev = per_def.get(mem.name, (False, False))
                    per_def[mem.name] = (
                        prev[0] or _word_in(mem.name, save_text),
                        prev[1] or _word_in(mem.name, load_text))

    # Skip directives: map each to the types whose definition span (or
    # serializer scope) contains it.
    ser_scopes: list[tuple[Path, int, int, str]] = []
    for ser in serializers:
        if ser.subject is not None:
            ser_scopes.append((ser.path, max(1, ser.head_line - 6),
                               ser.end_line, ser.subject))

    def skip_scope_defs(d: SkipDirective) -> list[TypeInfo]:
        out = []
        for infos in types.values():
            for ti in infos:
                if ti.path == d.path and \
                        ti.start_line - 4 <= d.line <= ti.end_line:
                    out.append(ti)
        for path, lo, hi, subject in ser_scopes:
            if path == d.path and lo <= d.line <= hi:
                # every definition the pair reaches is in scope too
                for ti, subs in reach.items():
                    if subject in subs and ti not in out:
                        out.append(ti)
        return out

    skipped: dict[TypeInfo, set[str]] = {}
    for d in skips:
        matched = False
        for ti in skip_scope_defs(d):
            if any(m.name == d.member for m in ti.members):
                matched = True
                skipped.setdefault(ti, set()).add(d.member)
                cov = coverage.get(ti, {}).get(d.member)
                if cov is not None and cov[0] and cov[1]:
                    d.stale_hit = True
        if not matched:
            findings.append(Finding(
                d.path, d.line, "unknown-skip",
                f"skip({d.member}) names no member of any type in scope "
                "— stale after a rename or misplaced"))
        elif d.stale_hit:
            findings.append(Finding(
                d.path, d.line, "stale-skip",
                f"skip({d.member}) but the field IS serialized by both "
                "save and load — delete the suppression"))

    for ti in sorted(coverage, key=lambda t: (str(t.path), t.start_line)):
        per_def = coverage[ti]
        for mem in ti.members:
            if mem.name in skipped.get(ti, set()):
                continue
            in_save, in_load = per_def.get(mem.name, (False, False))
            where = ", ".join(sorted(set(reach.get(ti, []))))
            if not in_save:
                findings.append(Finding(
                    ti.path, mem.line, "missing-save",
                    f"{ti.name}::{mem.name} is never written by the "
                    f"save serializer(s) of [{where}] — a snapshot "
                    "drops it; serialize it or add "
                    f"`ssdk-snap: skip({mem.name}): <reason>`"))
            if not in_load:
                findings.append(Finding(
                    ti.path, mem.line, "missing-load",
                    f"{ti.name}::{mem.name} is never read back by the "
                    f"load serializer(s) of [{where}] — restore "
                    "leaves it stale; deserialize it or add "
                    f"`ssdk-snap: skip({mem.name}): <reason>`"))
    return findings


# --------------------------------------------------------------------------

def gather_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*") if f.suffix in SOURCE_SUFFIXES))
        elif p.is_file():
            files.append(p)
        else:
            raise FileNotFoundError(p)
    return files


def run_lint(paths: list[Path], backend: str = "internal") -> list[Finding]:
    files = gather_files(paths)
    types: dict[str, list[TypeInfo]] = {}
    serializers: list[Serializer] = []
    skips: list[SkipDirective] = []
    ignored_types: set[str] = set()
    findings: list[Finding] = []

    texts: dict[Path, str] = {}
    kept_files: list[Path] = []
    for f in files:
        text = f.read_text(encoding="utf-8", errors="replace")
        if collect_directives(f, text.splitlines(), skips, ignored_types,
                              findings):
            continue  # ignore-file
        texts[f] = text
        kept_files.append(f)
    for f in kept_files:
        parse_file(f, texts[f], types, serializers)

    if backend in ("libclang", "auto"):
        ok = refine_types_with_libclang(kept_files, types,
                                        strict=(backend == "libclang"))
        if not ok and backend == "libclang":
            raise RuntimeError("libclang backend unavailable")
        if not ok:
            print("snapshot_coverage_lint: libclang unavailable, using "
                  "internal parser")

    findings.extend(analyze(types, serializers, skips, ignored_types))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    return findings


def self_test() -> int:
    """Run the bundled fixtures; each must produce exactly the expected
    rule set. The fixture suite is the lint's regression harness."""
    fixture_dir = Path(__file__).resolve().parent / "fixtures" / "snapshot"
    expectations = {
        "clean_roundtrip.cpp": set(),
        "missing_field.cpp": {"missing-save", "missing-load"},
        "missing_load.cpp": {"missing-load"},
        "nested_struct.cpp": {"missing-save", "missing-load"},
        "free_function_pair.cpp": {"missing-save", "missing-load"},
        "skipped_ok.cpp": set(),
        "skip_no_reason.cpp": {"unjustified-skip"},
        "stale_skip.cpp": {"stale-skip"},
        "unknown_skip.cpp": {"unknown-skip"},
        "asymmetric_pair.cpp": {"asymmetric-pair"},
        "bad_directive.cpp": {"bad-directive"},
    }
    failures = 0
    for name, expected_rules in sorted(expectations.items()):
        path = fixture_dir / name
        if not path.is_file():
            print(f"self-test: missing fixture {path}", file=sys.stderr)
            failures += 1
            continue
        findings = run_lint([path])
        got_rules = {f.rule for f in findings}
        if got_rules != expected_rules:
            failures += 1
            print(f"self-test FAIL {name}: expected rules "
                  f"{sorted(expected_rules)} got {sorted(got_rules)}",
                  file=sys.stderr)
            for f in findings:
                print("  " + f.render(), file=sys.stderr)
        else:
            print(f"self-test ok   {name}")
    if failures:
        print(f"self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 2
    print("self-test: all fixtures behaved")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="cross-check snapshotted types against their "
                    "save/load serializers")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (default: the "
                             "snapshot-bearing src/ subtrees)")
    parser.add_argument("--backend", choices=("internal", "libclang",
                                              "auto"),
                        default="internal",
                        help="member-extraction backend (default: "
                             "internal parser; libclang refines via "
                             "python3-clang)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the bundled fixtures instead of scanning")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(RULES))
        return 0
    if args.self_test:
        return self_test()

    if args.paths:
        paths = [Path(p).resolve() for p in args.paths]
    else:
        paths = [REPO_ROOT / d for d in DEFAULT_SCAN_DIRS]
    try:
        findings = run_lint(paths, backend=args.backend)
    except FileNotFoundError as e:
        print(f"snapshot_coverage_lint: no such path: {e.args[0]}",
              file=sys.stderr)
        return 2
    except RuntimeError as e:
        print(f"snapshot_coverage_lint: {e}", file=sys.stderr)
        return 2
    for f in findings:
        print(f.render())
    if findings:
        print(f"snapshot_coverage_lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
