#!/usr/bin/env bash
# clang-tidy driver: run the committed .clang-tidy check set over every
# first-party translation unit, using the compile database the default
# CMake preset exports.
#
# Usage:
#   tools/lint/run_tidy.sh [--strict] [--build-dir DIR] [paths...]
#
#   --strict       Fail (exit 127) when clang-tidy is not installed.
#                  Default is to skip with a notice so developer machines
#                  without LLVM do not break; CI passes --strict (or sets
#                  SSDK_TIDY_STRICT=1) after installing the tool.
#   --build-dir    Build tree holding compile_commands.json (default:
#                  <repo>/build; configured on the fly when missing).
#   paths          Restrict the run to these files/directories under src/.
#                  Default: every directory in the covered_dirs list below
#                  (all of src/); the list is a guard against new
#                  directories silently escaping tidy coverage.
#
# Exit status: 0 clean (or tool skipped in non-strict mode), 1 findings,
# 127 tool missing in strict mode.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
build_dir="${repo_root}/build"
strict="${SSDK_TIDY_STRICT:-0}"
paths=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --strict) strict=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    -h|--help) sed -n '2,22p' "${BASH_SOURCE[0]}"; exit 0 ;;
    *) paths+=("$1"); shift ;;
  esac
done

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    tidy="${candidate}"
    break
  fi
done

if [[ -z "${tidy}" ]]; then
  if [[ "${strict}" == "1" ]]; then
    echo "run_tidy: clang-tidy not found and --strict given" >&2
    exit 127
  fi
  echo "run_tidy: clang-tidy not installed; skipping (pass --strict to" \
       "make this an error)"
  exit 0
fi

# clang-tidy needs a compile database; configure one if the build tree
# does not have it yet (CMAKE_EXPORT_COMPILE_COMMANDS is on by default in
# the top-level CMakeLists).
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_tidy: configuring ${build_dir} to export compile_commands.json"
  cmake -S "${repo_root}" -B "${build_dir}" >/dev/null
fi

# Explicit coverage list: every first-party source directory, including
# the post-scheduler additions (sched, fleet, snapshot). The guard below
# fails when a new src/ subdirectory is not listed, so tidy coverage
# cannot silently lag the tree.
covered_dirs=(core fleet ftl nn sched sim snapshot ssd telemetry trace util)

for d in "${repo_root}"/src/*/; do
  name="$(basename "${d}")"
  found=0
  for c in "${covered_dirs[@]}"; do
    [[ "${c}" == "${name}" ]] && found=1 && break
  done
  if [[ ${found} -eq 0 ]]; then
    echo "run_tidy: src/${name} is not in the covered_dirs list —" \
         "add it (and sweep its warnings) to keep tidy coverage complete" >&2
    exit 2
  fi
done

if [[ ${#paths[@]} -eq 0 ]]; then
  for c in "${covered_dirs[@]}"; do
    [[ -d "${repo_root}/src/${c}" ]] && paths+=("${repo_root}/src/${c}")
  done
fi

files=()
for p in "${paths[@]}"; do
  if [[ -d "${p}" ]]; then
    while IFS= read -r f; do files+=("${f}"); done \
      < <(find "${p}" -name '*.cpp' | sort)
  else
    files+=("${p}")
  fi
done

if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_tidy: no translation units found under: ${paths[*]}" >&2
  exit 2
fi

echo "run_tidy: ${tidy} over ${#files[@]} translation unit(s)"
status=0
"${tidy}" -p "${build_dir}" --quiet "${files[@]}" || status=1

if [[ ${status} -ne 0 ]]; then
  echo "run_tidy: findings reported (see above)" >&2
  exit 1
fi
echo "run_tidy: clean"
