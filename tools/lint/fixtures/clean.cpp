// Fixture: schedule-safe code — sorted containers, seeded RNG via an
// explicit state, integer time. Must lint clean.
#include <cstdint>
#include <map>
#include <vector>

using SimTime = std::uint64_t;

std::map<std::uint64_t, std::uint64_t> ordered_;

SimTime fine(SimTime now) {
  SimTime total = now + 125;  // integer nanoseconds only
  for (const auto& [key, value] : ordered_) {
    total += value;  // std::map iterates in key order: deterministic
  }
  std::vector<int> v{3, 1, 2};
  return total + static_cast<SimTime>(v.size());
}
