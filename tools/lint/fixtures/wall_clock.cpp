// Fixture: every line here must trip the wall-clock rule.
#include <chrono>
#include <ctime>

long bad_now() {
  auto t = std::chrono::system_clock::now().time_since_epoch().count();
  auto s = std::chrono::steady_clock::now().time_since_epoch().count();
  long c = time(nullptr);
  return t + s + c;
}
