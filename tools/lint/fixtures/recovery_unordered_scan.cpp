// Fixture: a recovery-style scan accumulating per-LPN winners in an
// unordered map and then installing them by iteration — the exact shape
// that would make a post-crash rebuild depend on hash order. The real
// recovery pass (src/ftl/recovery.cpp) uses an ordered map for this.
#include <cstdint>
#include <unordered_map>

struct Winner {
  std::uint64_t ppn;
  std::uint64_t seq;
};

std::unordered_map<std::uint64_t, Winner> winners_;

std::uint64_t install_winners_bad() {
  std::uint64_t installed = 0;
  for (const auto& [key, w] : winners_) {
    installed += w.ppn ^ key;
  }
  return installed;
}
