// Fixture: iterating an unordered container without a suppression.
#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> table_;

std::uint64_t bad_sum() {
  std::uint64_t total = 0;
  for (const auto& [key, value] : table_) {
    total += key + value;
  }
  for (auto it = table_.begin(); it != table_.end(); ++it) {
    total += it->second;
  }
  return total;
}
