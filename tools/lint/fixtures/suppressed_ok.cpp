// Fixture: a justified suppression silences the finding — this file must
// lint clean.
#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> counters_;

std::uint64_t ok_sum() {
  std::uint64_t total = 0;
  // ssdk-lint: allow(unordered-iter): summation is commutative, so visit
  // order cannot affect the result.
  for (const auto& [key, value] : counters_) {
    total += value;
  }
  return total;
}
