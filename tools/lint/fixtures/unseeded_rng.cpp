// Fixture: every line here must trip the unseeded-rng rule.
#include <cstdlib>
#include <random>

int bad_random() {
  std::random_device rd;
  srand(42);
  return std::rand() + static_cast<int>(rd());
}
