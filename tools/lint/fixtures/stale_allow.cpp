// Fixture: a justified allow() whose rule no longer fires on the
// statement it governs is a stale-allow finding — the hazardous code it
// excused was removed, so the suppression must go too.
#include <cstdint>
#include <map>

std::map<std::uint64_t, std::uint64_t> counters_;

std::uint64_t ordered_sum() {
  std::uint64_t total = 0;
  // ssdk-lint: allow(unordered-iter): this used to walk an unordered_map,
  // but the container was switched to std::map and the allow was left in.
  for (const auto& [key, value] : counters_) {
    total += value;
  }
  return total;
}
