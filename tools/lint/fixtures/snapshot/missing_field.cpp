// Fixture: a member that neither serializer mentions — the classic
// forgotten-field bug. Must fire missing-save AND missing-load.
#include <cstdint>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

class Counter {
 public:
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;  // forgotten by both serializers
};

void Counter::save_state(snapshot::StateWriter& w) const {
  w.u64(total_);
}

void Counter::load_state(snapshot::StateReader& r) {
  total_ = r.u64();
}
