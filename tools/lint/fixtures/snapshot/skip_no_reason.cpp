// Fixture: a skip with no reason is itself a finding (unjustified-skip)
// even though it does suppress the coverage miss.
#include <cstdint>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

class Cache {
 public:
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::uint64_t entries_ = 0;
  // ssdk-snap: skip(hits_)
  std::uint64_t hits_ = 0;
};

void Cache::save_state(snapshot::StateWriter& w) const { w.u64(entries_); }
void Cache::load_state(snapshot::StateReader& r) { entries_ = r.u64(); }
