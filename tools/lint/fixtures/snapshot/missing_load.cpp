// Fixture: a field written on save but never read back on load — restore
// silently leaves it stale. Must fire missing-load only.
#include <cstdint>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

class Gauge {
 public:
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::uint64_t level_ = 0;
  std::uint64_t peak_ = 0;
};

void Gauge::save_state(snapshot::StateWriter& w) const {
  w.u64(level_);
  w.u64(peak_);
}

void Gauge::load_state(snapshot::StateReader& r) {
  level_ = r.u64();
  r.u64();  // peak value read into the void, never stored
}
