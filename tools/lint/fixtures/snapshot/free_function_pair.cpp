// Fixture: a free-function serializer pair (save_X(StateWriter&, T) /
// load_X(StateReader&, T&)) with a forgotten field — the SsdOptions
// idiom. Must fire missing-save and missing-load on Knobs::retries.
#include <cstdint>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

struct Knobs {
  std::uint64_t depth = 0;
  std::uint64_t width = 0;
  std::uint64_t retries = 0;  // forgotten below
};

void save_knobs(snapshot::StateWriter& w, const Knobs& k) {
  w.u64(k.depth);
  w.u64(k.width);
}

void load_knobs(snapshot::StateReader& r, Knobs& k) {
  k.depth = r.u64();
  k.width = r.u64();
}
