// Fixture: a skip on a field that IS serialized by both sides — the
// suppression outlived the gap it excused and must be deleted.
#include <cstdint>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

class Meter {
 public:
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::uint64_t count_ = 0;
  // ssdk-snap: skip(sum_): was derived once; now serialized directly.
  std::uint64_t sum_ = 0;
};

void Meter::save_state(snapshot::StateWriter& w) const {
  w.u64(count_);
  w.u64(sum_);
}

void Meter::load_state(snapshot::StateReader& r) {
  count_ = r.u64();
  sum_ = r.u64();
}
