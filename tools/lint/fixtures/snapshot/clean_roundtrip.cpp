// Fixture: a type whose save/load pair touches every member — must lint
// clean. Includes a ranged-for element struct and a nested member chain.
#include <cstdint>
#include <vector>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

struct WirePoint {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
};

class Track {
 public:
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::uint64_t epoch_ = 0;
  std::vector<WirePoint> points_;
};

void Track::save_state(snapshot::StateWriter& w) const {
  w.u64(epoch_);
  w.u64(points_.size());
  for (const WirePoint& p : points_) {
    w.u64(p.x);
    w.u64(p.y);
  }
}

void Track::load_state(snapshot::StateReader& r) {
  epoch_ = r.u64();
  const std::uint64_t n = r.u64();
  points_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    WirePoint p;
    p.x = r.u64();
    p.y = r.u64();
    points_.push_back(p);
  }
}
