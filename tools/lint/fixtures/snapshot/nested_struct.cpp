// Fixture: an element struct serialized in a ranged-for loop with one of
// its members forgotten by both sides. The lint must attribute the miss
// to the element struct, not the container owner.
#include <cstdint>
#include <vector>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

struct Slot {
  std::uint64_t index = 0;
  std::uint64_t owner = 0;
  std::uint64_t wear = 0;  // forgotten below
};

class SlotTable {
 public:
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::vector<Slot> slots_;
};

void SlotTable::save_state(snapshot::StateWriter& w) const {
  w.u64(slots_.size());
  for (const Slot& s : slots_) {
    w.u64(s.index);
    w.u64(s.owner);
  }
}

void SlotTable::load_state(snapshot::StateReader& r) {
  const std::uint64_t n = r.u64();
  slots_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    Slot s;
    s.index = r.u64();
    s.owner = r.u64();
    slots_.push_back(s);
  }
}
