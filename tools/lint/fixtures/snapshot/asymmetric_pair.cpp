// Fixture: a save serializer with no load counterpart — whatever it
// writes can never be restored. Must fire asymmetric-pair.
#include <cstdint>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

class Orphan {
 public:
  void save_state(snapshot::StateWriter& w) const;

 private:
  std::uint64_t value_ = 0;
};

void Orphan::save_state(snapshot::StateWriter& w) const { w.u64(value_); }
