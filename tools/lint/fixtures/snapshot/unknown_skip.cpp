// Fixture: a skip naming a member that no type in scope declares —
// stale after a rename, or simply misplaced.
#include <cstdint>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

class Ledger {
 public:
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::uint64_t balance_ = 0;
  // ssdk-snap: skip(old_balance_): renamed to balance_ long ago.
};

void Ledger::save_state(snapshot::StateWriter& w) const { w.u64(balance_); }
void Ledger::load_state(snapshot::StateReader& r) { balance_ = r.u64(); }
