// Fixture: a malformed ssdk-snap comment is a finding, not a silent
// no-op — a typo must never quietly disable a suppression.
#include <cstdint>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

class Tally {
 public:
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::uint64_t n_ = 0;
  // ssdk-snap: skipp(m_): typo in the directive verb
  std::uint64_t m_ = 0;
};

void Tally::save_state(snapshot::StateWriter& w) const {
  w.u64(n_);
  w.u64(m_);
}

void Tally::load_state(snapshot::StateReader& r) {
  n_ = r.u64();
  m_ = r.u64();
}
