// Fixture: a justified skip silences a genuinely-not-serialized member
// (a derived cache rebuilt on load) — must lint clean.
#include <cstdint>
#include <vector>

namespace snapshot {
class StateWriter;
class StateReader;
}  // namespace snapshot

class Index {
 public:
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::vector<std::uint64_t> keys_;
  // ssdk-snap: skip(lookup_): derived acceleration table, rebuilt from
  // keys_ by rebuild() at the end of load_state.
  std::vector<std::uint32_t> lookup_;
};

void Index::save_state(snapshot::StateWriter& w) const {
  w.u64(keys_.size());
  for (const std::uint64_t k : keys_) w.u64(k);
}

void Index::load_state(snapshot::StateReader& r) {
  const std::uint64_t n = r.u64();
  keys_.clear();
  for (std::uint64_t i = 0; i < n; ++i) keys_.push_back(r.u64());
  rebuild();
}
