// Fixture: an allow() with no justification is itself a finding.
#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> counters_;

std::uint64_t lazy_sum() {
  std::uint64_t total = 0;
  // ssdk-lint: allow(unordered-iter)
  for (const auto& [key, value] : counters_) {
    total += value;
  }
  return total;
}
