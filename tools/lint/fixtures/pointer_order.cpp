// Fixture: ordering by pointer value (ASLR makes this run-dependent).
#include <cstdint>
#include <functional>
#include <map>

struct Op {
  int x = 0;
};

std::map<Op*, int, std::less<Op*>> by_address;

bool bad_compare(const Op& a, const Op& b) {
  return &a < &b;
}

std::uintptr_t bad_key(const Op* op) {
  return reinterpret_cast<std::uintptr_t>(op);
}
