// Fixture: floating-point math accumulated into a simulation timestamp.
#include <cstdint>

using SimTime = std::uint64_t;
using Duration = std::uint64_t;

SimTime bad_schedule(SimTime now, double rate) {
  SimTime next = now + static_cast<Duration>(rate * 1.5);
  return next + static_cast<SimTime>(static_cast<double>(now) * 0.25);
}
