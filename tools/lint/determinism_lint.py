#!/usr/bin/env python3
"""Determinism lint for the SSDKeeper simulator.

The simulator's contract is bit-reproducibility: a fixed (workload, seed,
options) triple must produce an identical event schedule on every run, on
every machine. That contract dies quietly — a wall-clock read, an
accidental iteration over an unordered container, a pointer used as a
tie-break — and the golden-replay tests only catch the breakage after the
fact. This lint bans the constructs that break schedules *at review time*.

Rules (ids are what allow() takes):

  wall-clock      Real-time clocks: std::chrono::{system,steady,
                  high_resolution}_clock, time(), clock(), gettimeofday,
                  clock_gettime. Simulation time is `now_`; host time must
                  never reach a schedule.
  unseeded-rng    std::rand/srand and std::random_device. All randomness
                  flows through util::Rng with an explicit seed.
  unordered-iter  Iteration over a std::unordered_{map,set} (range-for or
                  .begin()/.cbegin()). Hash-order is implementation-defined,
                  so any iteration whose effect depends on visit order is a
                  schedule hazard. Order-independent walks are fine —
                  suppress with a justification saying why.
  pointer-order   Ordering/comparing pointer values (std::less<T*>,
                  casts to uintptr_t, &a < &b). Addresses differ run to
                  run under ASLR.
  float-time      static_cast<SimTime|Duration>(...) fed from
                  floating-point math. Config-time conversions are fine
                  (suppress, say so); accumulating float into event
                  timestamps is not — rounding drifts across platforms.

Suppressions: append on the offending line, or on a comment line directly
above it,

    // ssdk-lint: allow(<rule>): <justification>

The justification is mandatory; an allow() without one is itself a
finding. Scope is that single line. A suppression must also stay *live*:
an allow() whose rule no longer fires on the statement it governs is
reported as `stale-allow` — suppressions that outlive the code they
excused are deleted, not hoarded (they would silently excuse the next
real finding on that line).

Exit status: 0 = clean, 1 = findings, 2 = usage/self-test harness error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

# Directories whose code can affect the event schedule.
DEFAULT_SCAN_DIRS = ["src/sim", "src/ssd", "src/sched", "src/ftl",
                     "src/core", "src/snapshot", "src/fleet", "src/nn",
                     "src/util"]

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

RULES = ("wall-clock", "unseeded-rng", "unordered-iter", "pointer-order",
         "float-time", "stale-allow")

ALLOW_RE = re.compile(
    r"//\s*ssdk-lint:\s*allow\(([a-z-]+)\)(?::\s*(.*\S))?\s*$")

SIMPLE_PATTERNS = [
    ("wall-clock",
     re.compile(r"std::chrono::(?:system_clock|steady_clock|"
                r"high_resolution_clock)"),
     "real-time clock in simulation code"),
    ("wall-clock",
     re.compile(r"(?:\b|::)(?:time|clock)\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "C time()/clock() call"),
    ("wall-clock",
     re.compile(r"\b(?:gettimeofday|clock_gettime|localtime|gmtime)\s*\("),
     "wall-clock library call"),
    ("unseeded-rng",
     re.compile(r"(?:\b|::)s?rand\s*\("),
     "C rand()/srand() — use util::Rng with an explicit seed"),
    ("unseeded-rng",
     re.compile(r"std::random_device"),
     "std::random_device is non-deterministic by design"),
    ("pointer-order",
     re.compile(r"std::less<[^<>;]*\*\s*>"),
     "ordering by pointer value"),
    ("pointer-order",
     re.compile(r"reinterpret_cast<\s*(?:std::)?u?intptr_t\s*>"),
     "pointer converted to integer (address-dependent value)"),
    ("pointer-order",
     re.compile(r"(?<!&)&\s*\w+(?:\[[^\]]*\])?\s*[<>]=?\s*(?<!&)&(?!&)"),
     "comparing addresses of objects"),
]

FLOAT_TIME_CAST_RE = re.compile(
    r"static_cast<\s*(?:ssdk::)?(?:sim::)?(?:SimTime|Duration)\s*>")
FLOAT_TOKEN_RE = re.compile(r"\b(?:double|float)\b|\d\.\d")

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        try:
            shown = self.path.relative_to(REPO_ROOT)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


def strip_strings_and_comments(line: str) -> str:
    """Blank out string/char literals and // comments so patterns never
    match inside them. Lengths are preserved (columns stay meaningful)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def collect_unordered_names(files: list[Path]) -> set[str]:
    """Project-wide pass: names of variables/members declared as unordered
    containers. Declarations usually live in headers while the iteration
    lives in a .cpp, so this must see every scanned file first."""
    names: set[str] = set()
    for path in files:
        text = path.read_text(encoding="utf-8", errors="replace")
        for match in UNORDERED_DECL_RE.finditer(text):
            i = match.end() - 1  # at '<'
            depth = 0
            while i < len(text):
                if text[i] == "<":
                    depth += 1
                elif text[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            if depth != 0:
                continue
            tail = text[i + 1:i + 200]
            m = re.match(r"\s*(?:&\s*)?([A-Za-z_]\w*)\s*[;={,)\[]", tail)
            if m and m.group(1) not in ("const", "return"):
                names.add(m.group(1))
    return names


def statement_start(lines: list[str], idx: int) -> int:
    """First line of the statement containing line `idx`: walk up while the
    previous line is a code line that clearly continues into this one (no
    terminating ';', '{' or '}'). Comment and blank lines end the walk —
    they mark the statement's lead-in. Bounded so a pathological file
    cannot drag the scope arbitrarily far."""
    j = idx
    while j > 0 and idx - j < 8:
        prev = strip_strings_and_comments(lines[j - 1]).strip()
        if not prev or prev.endswith((";", "{", "}")):
            break
        j -= 1
    return j


def line_suppressions(lines: list[str],
                      idx: int) -> list[tuple[str, bool, int]]:
    """allow() directives governing line `idx` (0-based): on any line of
    the statement it belongs to, or on the contiguous run of pure comment
    lines directly above that statement. Returns (rule,
    has_justification, directive_line_idx) triples."""
    found = []
    start = statement_start(lines, idx)
    for k in range(start, idx + 1):
        m = ALLOW_RE.search(lines[k])
        if m:
            found.append((m.group(1), bool(m.group(2)), k))
    j = start - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        m = ALLOW_RE.search(lines[j])
        if m:
            found.append((m.group(1), bool(m.group(2)), j))
        j -= 1
    return found


def scan_file(path: Path, unordered_names: set[str]) -> list[Finding]:
    lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    findings: list[Finding] = []

    # Every allow() directive in the file, by line; marked used when its
    # rule actually fires on the statement it governs.
    directives: dict[int, tuple[str, bool]] = {}
    for k, raw in enumerate(lines):
        m = ALLOW_RE.search(raw)
        if m:
            directives[k] = (m.group(1), bool(m.group(2)))
    used_directives: set[int] = set()

    iter_res = []
    if unordered_names:
        alt = "|".join(re.escape(n) for n in sorted(unordered_names))
        iter_res = [
            (re.compile(r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))?(" + alt
                        + r")\s*\)"),
             "range-for over unordered container '{}'"),
            (re.compile(r"\b(" + alt + r")\s*\.\s*c?begin\s*\(\s*\)"),
             "iterator walk over unordered container '{}'"),
        ]

    for idx, raw in enumerate(lines):
        line = strip_strings_and_comments(raw)
        hits: list[tuple[str, str]] = []

        for rule, pattern, message in SIMPLE_PATTERNS:
            if pattern.search(line):
                hits.append((rule, message))

        if FLOAT_TIME_CAST_RE.search(line):
            window = " ".join(
                strip_strings_and_comments(x)
                for x in lines[idx:idx + 3])
            if FLOAT_TOKEN_RE.search(window):
                hits.append(("float-time",
                             "floating-point math cast into a simulation "
                             "time/duration"))

        for pattern, template in iter_res:
            m = pattern.search(line)
            if m:
                hits.append(("unordered-iter", template.format(m.group(1))))

        if not hits:
            continue

        suppressions = line_suppressions(lines, idx)
        for rule, message in hits:
            matching = [s for s in suppressions if s[0] == rule]
            for _, _, directive_idx in matching:
                used_directives.add(directive_idx)
            if not matching:
                findings.append(Finding(path, idx + 1, rule, message))
                continue
            if not any(justified for _, justified, _ in matching):
                findings.append(Finding(
                    path, idx + 1, rule,
                    "allow(" + rule + ") without a justification — "
                    "explain why this is schedule-safe"))

    # Every allow() must earn its keep: a directive whose rule never fired
    # on the statement it governs is stale (the code it excused is gone,
    # or it was written against the wrong line) and would silently excuse
    # the next real finding there. Unjustified directives are reported
    # whether or not they are stale.
    for directive_idx, (rule, _justified) in sorted(directives.items()):
        if directive_idx not in used_directives:
            findings.append(Finding(
                path, directive_idx + 1, "stale-allow",
                f"allow({rule}) suppresses nothing — '{rule}' does not "
                "fire on the statement this governs; delete the "
                "suppression"))
    return findings


def gather_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*") if f.suffix in SOURCE_SUFFIXES))
        elif p.is_file():
            files.append(p)
        else:
            raise FileNotFoundError(p)
    return files


def run_lint(paths: list[Path]) -> list[Finding]:
    files = gather_files(paths)
    unordered_names = collect_unordered_names(files)
    findings: list[Finding] = []
    for f in files:
        findings.extend(scan_file(f, unordered_names))
    return findings


def self_test() -> int:
    """Run the bundled fixtures and check each produces exactly the
    expected outcome. The fixture set is the lint's regression suite."""
    fixture_dir = Path(__file__).resolve().parent / "fixtures"
    expectations = {
        "wall_clock.cpp": {"wall-clock"},
        "unseeded_rng.cpp": {"unseeded-rng"},
        "unordered_iter.cpp": {"unordered-iter"},
        "pointer_order.cpp": {"pointer-order"},
        "float_time.cpp": {"float-time"},
        "suppressed_ok.cpp": set(),
        "suppressed_no_reason.cpp": {"unordered-iter"},
        "stale_allow.cpp": {"stale-allow"},
        "recovery_unordered_scan.cpp": {"unordered-iter"},
        "clean.cpp": set(),
    }
    failures = 0
    for name, expected_rules in sorted(expectations.items()):
        path = fixture_dir / name
        if not path.is_file():
            print(f"self-test: missing fixture {path}", file=sys.stderr)
            failures += 1
            continue
        findings = run_lint([path])
        got_rules = {f.rule for f in findings}
        if got_rules != expected_rules:
            failures += 1
            print(f"self-test FAIL {name}: expected rules "
                  f"{sorted(expected_rules)} got {sorted(got_rules)}",
                  file=sys.stderr)
            for f in findings:
                print("  " + f.render(), file=sys.stderr)
        else:
            print(f"self-test ok   {name}")
    if failures:
        print(f"self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 2
    print("self-test: all fixtures behaved")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="ban schedule-affecting constructs in simulator code")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (default: the "
                             "schedule-affecting src/ subtrees)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the bundled fixtures instead of scanning")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(RULES))
        return 0
    if args.self_test:
        return self_test()

    if args.paths:
        paths = [Path(p).resolve() for p in args.paths]
    else:
        paths = [REPO_ROOT / d for d in DEFAULT_SCAN_DIRS]
    try:
        findings = run_lint(paths)
    except FileNotFoundError as e:
        print(f"determinism_lint: no such path: {e.args[0]}",
              file=sys.stderr)
        return 2
    for f in findings:
        print(f.render())
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
