#!/usr/bin/env python3
"""Bench-floor regression gate.

Compares fresh BENCH_*.json results against the floors committed in the
repo's reference copies. A committed JSON opts a field into enforcement
by carrying a ``floor_<field>`` key; for every such key the same-named
``<field>`` in the fresh JSON must respect the bound:

  * fields ending in ``_s`` (but not ``_per_s``) are wall-clock
    times                                        -> fresh <= floor
  * everything else (rates like ``events_per_s``,
    scores, counts)                              -> fresh >= floor

Fields without a floor_* key are archived trajectory only, never gated.
The fresh file's own floor_* keys are ignored (a regenerated bench cannot
loosen its committed floor).

Usage:
  check_bench_floors.py COMMITTED FRESH [COMMITTED FRESH ...]

Exit status: 0 all floors respected, 1 regression (or missing field),
2 usage / unreadable input.
"""

import json
import sys

FLOOR_PREFIX = "floor_"


def check_pair(committed_path, fresh_path):
    """Returns a list of failure strings (empty = pass)."""
    with open(committed_path, encoding="utf-8") as f:
        committed = json.load(f)
    with open(fresh_path, encoding="utf-8") as f:
        fresh = json.load(f)

    failures = []
    floors = {
        key[len(FLOOR_PREFIX):]: value
        for key, value in committed.items()
        if key.startswith(FLOOR_PREFIX)
    }
    if not floors:
        print(f"  {committed_path}: no floor_* keys, nothing enforced")
        return failures

    for field, floor in sorted(floors.items()):
        if field not in fresh:
            failures.append(
                f"{fresh_path}: field '{field}' missing (floor {floor})")
            continue
        value = fresh[field]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            failures.append(
                f"{fresh_path}: field '{field}' is not numeric: {value!r}")
            continue
        # _s fields are durations (smaller is better) — except _per_s,
        # which is a rate; rates and scores are bigger-is-better.
        if field.endswith("_s") and not field.endswith("_per_s"):
            ok = value <= floor
            relation = "<="
        else:
            ok = value >= floor
            relation = ">="
        status = "ok" if ok else "REGRESSION"
        print(f"  {field}: {value:g} {relation} floor {floor:g} ... {status}")
        if not ok:
            failures.append(
                f"{fresh_path}: {field} = {value:g} violates floor "
                f"{relation} {floor:g} (committed in {committed_path})")
    return failures


def main(argv):
    args = argv[1:]
    if not args or len(args) % 2 != 0:
        print(__doc__, file=sys.stderr)
        return 2
    failures = []
    for committed, fresh in zip(args[0::2], args[1::2]):
        print(f"checking {fresh} against floors in {committed}")
        try:
            failures.extend(check_pair(committed, fresh))
        except (OSError, json.JSONDecodeError) as e:
            print(f"check_bench_floors: cannot read inputs: {e}",
                  file=sys.stderr)
            return 2
    if failures:
        print(f"\ncheck_bench_floors: {len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\ncheck_bench_floors: all floors respected")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
