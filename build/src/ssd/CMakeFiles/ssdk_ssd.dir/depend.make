# Empty dependencies file for ssdk_ssd.
# This may be replaced when dependencies are built.
