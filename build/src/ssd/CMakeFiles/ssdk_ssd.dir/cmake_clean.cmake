file(REMOVE_RECURSE
  "CMakeFiles/ssdk_ssd.dir/ssd.cpp.o"
  "CMakeFiles/ssdk_ssd.dir/ssd.cpp.o.d"
  "libssdk_ssd.a"
  "libssdk_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdk_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
