file(REMOVE_RECURSE
  "libssdk_ssd.a"
)
