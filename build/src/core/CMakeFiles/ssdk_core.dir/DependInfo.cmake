
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cpp" "src/core/CMakeFiles/ssdk_core.dir/allocator.cpp.o" "gcc" "src/core/CMakeFiles/ssdk_core.dir/allocator.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/ssdk_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/ssdk_core.dir/features.cpp.o.d"
  "/root/repo/src/core/keeper.cpp" "src/core/CMakeFiles/ssdk_core.dir/keeper.cpp.o" "gcc" "src/core/CMakeFiles/ssdk_core.dir/keeper.cpp.o.d"
  "/root/repo/src/core/label_gen.cpp" "src/core/CMakeFiles/ssdk_core.dir/label_gen.cpp.o" "gcc" "src/core/CMakeFiles/ssdk_core.dir/label_gen.cpp.o.d"
  "/root/repo/src/core/learner.cpp" "src/core/CMakeFiles/ssdk_core.dir/learner.cpp.o" "gcc" "src/core/CMakeFiles/ssdk_core.dir/learner.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ssdk_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ssdk_core.dir/report.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/ssdk_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/ssdk_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/ssdk_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/ssdk_core.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ssd/CMakeFiles/ssdk_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ssdk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ssdk_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssdk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/ssdk_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ssdk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
