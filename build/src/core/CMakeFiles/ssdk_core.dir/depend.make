# Empty dependencies file for ssdk_core.
# This may be replaced when dependencies are built.
