file(REMOVE_RECURSE
  "CMakeFiles/ssdk_core.dir/allocator.cpp.o"
  "CMakeFiles/ssdk_core.dir/allocator.cpp.o.d"
  "CMakeFiles/ssdk_core.dir/features.cpp.o"
  "CMakeFiles/ssdk_core.dir/features.cpp.o.d"
  "CMakeFiles/ssdk_core.dir/keeper.cpp.o"
  "CMakeFiles/ssdk_core.dir/keeper.cpp.o.d"
  "CMakeFiles/ssdk_core.dir/label_gen.cpp.o"
  "CMakeFiles/ssdk_core.dir/label_gen.cpp.o.d"
  "CMakeFiles/ssdk_core.dir/learner.cpp.o"
  "CMakeFiles/ssdk_core.dir/learner.cpp.o.d"
  "CMakeFiles/ssdk_core.dir/report.cpp.o"
  "CMakeFiles/ssdk_core.dir/report.cpp.o.d"
  "CMakeFiles/ssdk_core.dir/runner.cpp.o"
  "CMakeFiles/ssdk_core.dir/runner.cpp.o.d"
  "CMakeFiles/ssdk_core.dir/strategy.cpp.o"
  "CMakeFiles/ssdk_core.dir/strategy.cpp.o.d"
  "libssdk_core.a"
  "libssdk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
