# Empty compiler generated dependencies file for ssdk_core.
# This may be replaced when dependencies are built.
