file(REMOVE_RECURSE
  "libssdk_core.a"
)
