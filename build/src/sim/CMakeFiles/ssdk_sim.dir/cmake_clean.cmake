file(REMOVE_RECURSE
  "CMakeFiles/ssdk_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ssdk_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ssdk_sim.dir/geometry.cpp.o"
  "CMakeFiles/ssdk_sim.dir/geometry.cpp.o.d"
  "CMakeFiles/ssdk_sim.dir/metrics.cpp.o"
  "CMakeFiles/ssdk_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/ssdk_sim.dir/timing.cpp.o"
  "CMakeFiles/ssdk_sim.dir/timing.cpp.o.d"
  "libssdk_sim.a"
  "libssdk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
