file(REMOVE_RECURSE
  "libssdk_sim.a"
)
