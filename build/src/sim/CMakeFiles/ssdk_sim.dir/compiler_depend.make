# Empty compiler generated dependencies file for ssdk_sim.
# This may be replaced when dependencies are built.
