
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/catalog.cpp" "src/trace/CMakeFiles/ssdk_trace.dir/catalog.cpp.o" "gcc" "src/trace/CMakeFiles/ssdk_trace.dir/catalog.cpp.o.d"
  "/root/repo/src/trace/mixer.cpp" "src/trace/CMakeFiles/ssdk_trace.dir/mixer.cpp.o" "gcc" "src/trace/CMakeFiles/ssdk_trace.dir/mixer.cpp.o.d"
  "/root/repo/src/trace/msr_parser.cpp" "src/trace/CMakeFiles/ssdk_trace.dir/msr_parser.cpp.o" "gcc" "src/trace/CMakeFiles/ssdk_trace.dir/msr_parser.cpp.o.d"
  "/root/repo/src/trace/msr_writer.cpp" "src/trace/CMakeFiles/ssdk_trace.dir/msr_writer.cpp.o" "gcc" "src/trace/CMakeFiles/ssdk_trace.dir/msr_writer.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/trace/CMakeFiles/ssdk_trace.dir/synthetic.cpp.o" "gcc" "src/trace/CMakeFiles/ssdk_trace.dir/synthetic.cpp.o.d"
  "/root/repo/src/trace/workload_stats.cpp" "src/trace/CMakeFiles/ssdk_trace.dir/workload_stats.cpp.o" "gcc" "src/trace/CMakeFiles/ssdk_trace.dir/workload_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ssdk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssdk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
