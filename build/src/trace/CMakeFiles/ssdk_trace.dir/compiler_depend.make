# Empty compiler generated dependencies file for ssdk_trace.
# This may be replaced when dependencies are built.
