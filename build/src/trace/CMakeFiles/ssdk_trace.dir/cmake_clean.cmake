file(REMOVE_RECURSE
  "CMakeFiles/ssdk_trace.dir/catalog.cpp.o"
  "CMakeFiles/ssdk_trace.dir/catalog.cpp.o.d"
  "CMakeFiles/ssdk_trace.dir/mixer.cpp.o"
  "CMakeFiles/ssdk_trace.dir/mixer.cpp.o.d"
  "CMakeFiles/ssdk_trace.dir/msr_parser.cpp.o"
  "CMakeFiles/ssdk_trace.dir/msr_parser.cpp.o.d"
  "CMakeFiles/ssdk_trace.dir/msr_writer.cpp.o"
  "CMakeFiles/ssdk_trace.dir/msr_writer.cpp.o.d"
  "CMakeFiles/ssdk_trace.dir/synthetic.cpp.o"
  "CMakeFiles/ssdk_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/ssdk_trace.dir/workload_stats.cpp.o"
  "CMakeFiles/ssdk_trace.dir/workload_stats.cpp.o.d"
  "libssdk_trace.a"
  "libssdk_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdk_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
