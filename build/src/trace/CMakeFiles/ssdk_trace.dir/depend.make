# Empty dependencies file for ssdk_trace.
# This may be replaced when dependencies are built.
