file(REMOVE_RECURSE
  "libssdk_trace.a"
)
