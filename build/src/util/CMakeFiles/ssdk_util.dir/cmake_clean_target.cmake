file(REMOVE_RECURSE
  "libssdk_util.a"
)
