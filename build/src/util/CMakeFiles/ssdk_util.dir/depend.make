# Empty dependencies file for ssdk_util.
# This may be replaced when dependencies are built.
