# Empty compiler generated dependencies file for ssdk_util.
# This may be replaced when dependencies are built.
