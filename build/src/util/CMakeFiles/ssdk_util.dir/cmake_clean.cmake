file(REMOVE_RECURSE
  "CMakeFiles/ssdk_util.dir/config.cpp.o"
  "CMakeFiles/ssdk_util.dir/config.cpp.o.d"
  "CMakeFiles/ssdk_util.dir/csv.cpp.o"
  "CMakeFiles/ssdk_util.dir/csv.cpp.o.d"
  "CMakeFiles/ssdk_util.dir/histogram.cpp.o"
  "CMakeFiles/ssdk_util.dir/histogram.cpp.o.d"
  "CMakeFiles/ssdk_util.dir/logger.cpp.o"
  "CMakeFiles/ssdk_util.dir/logger.cpp.o.d"
  "CMakeFiles/ssdk_util.dir/rng.cpp.o"
  "CMakeFiles/ssdk_util.dir/rng.cpp.o.d"
  "CMakeFiles/ssdk_util.dir/stats.cpp.o"
  "CMakeFiles/ssdk_util.dir/stats.cpp.o.d"
  "CMakeFiles/ssdk_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ssdk_util.dir/thread_pool.cpp.o.d"
  "libssdk_util.a"
  "libssdk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
