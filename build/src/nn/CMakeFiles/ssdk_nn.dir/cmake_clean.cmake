file(REMOVE_RECURSE
  "CMakeFiles/ssdk_nn.dir/activations.cpp.o"
  "CMakeFiles/ssdk_nn.dir/activations.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/cross_validation.cpp.o"
  "CMakeFiles/ssdk_nn.dir/cross_validation.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/dataset.cpp.o"
  "CMakeFiles/ssdk_nn.dir/dataset.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/knn.cpp.o"
  "CMakeFiles/ssdk_nn.dir/knn.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/layer.cpp.o"
  "CMakeFiles/ssdk_nn.dir/layer.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/loss.cpp.o"
  "CMakeFiles/ssdk_nn.dir/loss.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/metrics.cpp.o"
  "CMakeFiles/ssdk_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/mlp.cpp.o"
  "CMakeFiles/ssdk_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/naive_bayes.cpp.o"
  "CMakeFiles/ssdk_nn.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/optimizer.cpp.o"
  "CMakeFiles/ssdk_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/scaler.cpp.o"
  "CMakeFiles/ssdk_nn.dir/scaler.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/serialize.cpp.o"
  "CMakeFiles/ssdk_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/tensor.cpp.o"
  "CMakeFiles/ssdk_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/ssdk_nn.dir/trainer.cpp.o"
  "CMakeFiles/ssdk_nn.dir/trainer.cpp.o.d"
  "libssdk_nn.a"
  "libssdk_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdk_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
