# Empty dependencies file for ssdk_nn.
# This may be replaced when dependencies are built.
