file(REMOVE_RECURSE
  "libssdk_nn.a"
)
