
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/cross_validation.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/cross_validation.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/cross_validation.cpp.o.d"
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/knn.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/knn.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/knn.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/metrics.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/metrics.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/naive_bayes.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/naive_bayes.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/scaler.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/scaler.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/scaler.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/ssdk_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/ssdk_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ssdk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
