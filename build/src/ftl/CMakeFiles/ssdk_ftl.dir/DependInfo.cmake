
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/block_manager.cpp" "src/ftl/CMakeFiles/ssdk_ftl.dir/block_manager.cpp.o" "gcc" "src/ftl/CMakeFiles/ssdk_ftl.dir/block_manager.cpp.o.d"
  "/root/repo/src/ftl/ftl.cpp" "src/ftl/CMakeFiles/ssdk_ftl.dir/ftl.cpp.o" "gcc" "src/ftl/CMakeFiles/ssdk_ftl.dir/ftl.cpp.o.d"
  "/root/repo/src/ftl/mapping.cpp" "src/ftl/CMakeFiles/ssdk_ftl.dir/mapping.cpp.o" "gcc" "src/ftl/CMakeFiles/ssdk_ftl.dir/mapping.cpp.o.d"
  "/root/repo/src/ftl/page_alloc.cpp" "src/ftl/CMakeFiles/ssdk_ftl.dir/page_alloc.cpp.o" "gcc" "src/ftl/CMakeFiles/ssdk_ftl.dir/page_alloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ssdk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssdk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
