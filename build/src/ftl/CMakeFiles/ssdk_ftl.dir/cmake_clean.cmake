file(REMOVE_RECURSE
  "CMakeFiles/ssdk_ftl.dir/block_manager.cpp.o"
  "CMakeFiles/ssdk_ftl.dir/block_manager.cpp.o.d"
  "CMakeFiles/ssdk_ftl.dir/ftl.cpp.o"
  "CMakeFiles/ssdk_ftl.dir/ftl.cpp.o.d"
  "CMakeFiles/ssdk_ftl.dir/mapping.cpp.o"
  "CMakeFiles/ssdk_ftl.dir/mapping.cpp.o.d"
  "CMakeFiles/ssdk_ftl.dir/page_alloc.cpp.o"
  "CMakeFiles/ssdk_ftl.dir/page_alloc.cpp.o.d"
  "libssdk_ftl.a"
  "libssdk_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdk_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
