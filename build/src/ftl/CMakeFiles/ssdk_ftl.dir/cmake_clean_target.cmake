file(REMOVE_RECURSE
  "libssdk_ftl.a"
)
