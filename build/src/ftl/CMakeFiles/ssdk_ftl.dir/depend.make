# Empty dependencies file for ssdk_ftl.
# This may be replaced when dependencies are built.
