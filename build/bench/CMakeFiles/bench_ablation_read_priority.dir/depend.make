# Empty dependencies file for bench_ablation_read_priority.
# This may be replaced when dependencies are built.
