file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_read_priority.dir/bench_ablation_read_priority.cpp.o"
  "CMakeFiles/bench_ablation_read_priority.dir/bench_ablation_read_priority.cpp.o.d"
  "bench_ablation_read_priority"
  "bench_ablation_read_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_read_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
