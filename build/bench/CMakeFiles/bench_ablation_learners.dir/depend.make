# Empty dependencies file for bench_ablation_learners.
# This may be replaced when dependencies are built.
