file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_learners.dir/bench_ablation_learners.cpp.o"
  "CMakeFiles/bench_ablation_learners.dir/bench_ablation_learners.cpp.o.d"
  "bench_ablation_learners"
  "bench_ablation_learners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
