file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_mixes.dir/bench_table5_mixes.cpp.o"
  "CMakeFiles/bench_table5_mixes.dir/bench_table5_mixes.cpp.o.d"
  "bench_table5_mixes"
  "bench_table5_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
