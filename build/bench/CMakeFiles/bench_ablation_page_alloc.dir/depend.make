# Empty dependencies file for bench_ablation_page_alloc.
# This may be replaced when dependencies are built.
