# Empty compiler generated dependencies file for bench_ablation_multiplane.
# This may be replaced when dependencies are built.
