file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiplane.dir/bench_ablation_multiplane.cpp.o"
  "CMakeFiles/bench_ablation_multiplane.dir/bench_ablation_multiplane.cpp.o.d"
  "bench_ablation_multiplane"
  "bench_ablation_multiplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
