# Empty dependencies file for bench_fig5_performance.
# This may be replaced when dependencies are built.
