# Empty compiler generated dependencies file for bench_fig6_strategy_map.
# This may be replaced when dependencies are built.
