# Empty dependencies file for bench_fig4_table3_training.
# This may be replaced when dependencies are built.
