file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/allocator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/allocator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/features_test.cpp.o"
  "CMakeFiles/test_core.dir/core/features_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/keeper_periodic_test.cpp.o"
  "CMakeFiles/test_core.dir/core/keeper_periodic_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/keeper_test.cpp.o"
  "CMakeFiles/test_core.dir/core/keeper_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/label_gen_test.cpp.o"
  "CMakeFiles/test_core.dir/core/label_gen_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/learner_test.cpp.o"
  "CMakeFiles/test_core.dir/core/learner_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/runner_test.cpp.o"
  "CMakeFiles/test_core.dir/core/runner_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/strategy_property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/strategy_property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/strategy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/strategy_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
