
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/config_test.cpp" "tests/CMakeFiles/test_util.dir/util/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/config_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/test_util.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/test_util.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/logger_test.cpp" "tests/CMakeFiles/test_util.dir/util/logger_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/logger_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ssdk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/ssdk_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/ssdk_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ssdk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ssdk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ssdk_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssdk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
