file(REMOVE_RECURSE
  "CMakeFiles/test_ssd.dir/ssd/ssd_backlog_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_backlog_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/ssd_basic_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_basic_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/ssd_contention_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_contention_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/ssd_gc_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_gc_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/ssd_golden_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_golden_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/ssd_param_property_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_param_property_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/ssd_property_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_property_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/ssd_trim_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_trim_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/ssd_wear_leveling_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_wear_leveling_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/ssd_write_buffer_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/ssd_write_buffer_test.cpp.o.d"
  "test_ssd"
  "test_ssd.pdb"
  "test_ssd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
