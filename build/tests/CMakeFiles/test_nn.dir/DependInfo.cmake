
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/activations_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/activations_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/activations_test.cpp.o.d"
  "/root/repo/tests/nn/cross_validation_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/cross_validation_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/cross_validation_test.cpp.o.d"
  "/root/repo/tests/nn/dataset_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/dataset_test.cpp.o.d"
  "/root/repo/tests/nn/gradient_check_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/gradient_check_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/gradient_check_test.cpp.o.d"
  "/root/repo/tests/nn/knn_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/knn_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/knn_test.cpp.o.d"
  "/root/repo/tests/nn/layer_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/layer_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/layer_test.cpp.o.d"
  "/root/repo/tests/nn/loss_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/loss_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/loss_test.cpp.o.d"
  "/root/repo/tests/nn/metrics_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/metrics_test.cpp.o.d"
  "/root/repo/tests/nn/mlp_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/mlp_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/mlp_test.cpp.o.d"
  "/root/repo/tests/nn/naive_bayes_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/naive_bayes_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/naive_bayes_test.cpp.o.d"
  "/root/repo/tests/nn/optimizer_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/optimizer_test.cpp.o.d"
  "/root/repo/tests/nn/scaler_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/scaler_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/scaler_test.cpp.o.d"
  "/root/repo/tests/nn/serialize_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/serialize_test.cpp.o.d"
  "/root/repo/tests/nn/tensor_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o.d"
  "/root/repo/tests/nn/trainer_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/trainer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ssdk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/ssdk_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/ssdk_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ssdk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ssdk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ssdk_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssdk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
