file(REMOVE_RECURSE
  "CMakeFiles/adaptive_tenants.dir/adaptive_tenants.cpp.o"
  "CMakeFiles/adaptive_tenants.dir/adaptive_tenants.cpp.o.d"
  "adaptive_tenants"
  "adaptive_tenants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_tenants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
