# Empty compiler generated dependencies file for adaptive_tenants.
# This may be replaced when dependencies are built.
